#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace blend {

/// Error codes used across the library. Modeled after the Status idiom common
/// in database engines (Arrow, RocksDB): recoverable errors are values, not
/// exceptions, so hot paths stay exception-free.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kPlanError,
  kExecutionError,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

/// Stable human-readable name of a StatusCode; also used by
/// Status::ToString, so error strings stay greppable across logs and tests.
constexpr const char* StatusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kPlanError: return "PlanError";
    case StatusCode::kExecutionError: return "ExecutionError";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
  }
  return "Unknown";
}

/// A cheap, copyable success-or-error value.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status PlanError(std::string m) {
    return Status(StatusCode::kPlanError, std::move(m));
  }
  static Status ExecutionError(std::string m) {
    return Status(StatusCode::kExecutionError, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {}    // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const { return std::get<Status>(v_); }
  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T&& take() { return std::move(std::get<T>(v_)); }

  /// Returns the value or aborts; for tests and examples where errors are bugs.
  T& ValueOrDie() {
    if (!ok()) {
      // Deliberately crash with the message visible.
      // blend-lint: allow(no-raw-stdio)
      fprintf(stderr, "Result error: %s\n", status().ToString().c_str());
      abort();
    }
    return value();
  }

 private:
  std::variant<T, Status> v_;
};

namespace internal {

/// Terminates with the failing condition and location visible; the single
/// funnel for intentional process-fatal asserts (see BLEND_CHECK).
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& detail) {
  // Abort path: the process is about to die, stderr is the only channel.
  // blend-lint: allow(no-raw-stdio)
  std::fprintf(stderr, "BLEND_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, detail.empty() ? "" : " — ", detail.c_str());
  std::abort();
}

}  // namespace internal

/// Intentional invariant assert: aborts (in every build type) with the
/// condition and location when `cond` is false. Use it where a violated
/// invariant means a bug, not a recoverable error — recoverable paths return
/// Status instead. An optional string-literal message adds context:
/// BLEND_CHECK(parts == n, "merge lost a partition").
#define BLEND_CHECK(cond, ...)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::blend::internal::CheckFailed(__FILE__, __LINE__, #cond,       \
                                     ::std::string("" __VA_ARGS__));  \
    }                                                                 \
  } while (0)

#define BLEND_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::blend::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#define BLEND_CONCAT_INNER(a, b) a##b
#define BLEND_CONCAT(a, b) BLEND_CONCAT_INNER(a, b)

#define BLEND_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto&& tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();               \
  lhs = tmp.take();

#define BLEND_ASSIGN_OR_RETURN(lhs, expr) \
  BLEND_ASSIGN_OR_RETURN_IMPL(BLEND_CONCAT(_blend_res_, __LINE__), lhs, expr)

}  // namespace blend
