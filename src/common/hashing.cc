#include "common/hashing.h"

namespace blend {

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97f4A7C15ULL + (a << 6) + (a >> 2));
}

uint64_t SaltedHash(std::string_view s, uint64_t salt) {
  return Mix64(Fnv1a64(s) ^ Mix64(salt));
}

}  // namespace blend
