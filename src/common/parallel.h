#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace blend {

/// Resolves a user-facing thread-count knob: 0 means "one per hardware
/// thread"; 1 and any negative value force serial execution. Shared by the
/// offline index build and the online query engine so both knobs read the
/// same way.
inline size_t ResolveThreads(int num_threads) {
  if (num_threads > 1) return static_cast<size_t>(num_threads);
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }
  return 1;
}

/// Runs fn(task_id) for every task in [0, num_tasks) on up to `threads`
/// workers (morsel-driven: workers claim the next task from a shared atomic
/// counter, so skew in per-task cost balances out). With threads <= 1, or a
/// single task, runs inline with no thread spawned.
///
/// Determinism is the caller's contract: fn must write only to
/// task-id-indexed slots, so that the result never depends on which worker
/// ran which task or in what order tasks finished.
/// Concatenates per-task output buffers in task order — the second half of
/// the ParallelFor determinism idiom: workers write only their own
/// task-indexed slot, and the ordered concatenation makes the result
/// independent of which worker ran which task.
template <typename T>
std::vector<T> ConcatParts(std::vector<std::vector<T>> parts) {
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<T> out;
  out.reserve(total);
  for (const auto& part : parts) out.insert(out.end(), part.begin(), part.end());
  return out;
}

template <typename Fn>
void ParallelFor(size_t num_tasks, size_t threads, const Fn& fn) {
  const size_t workers = std::min(threads, num_tasks);
  if (workers <= 1) {
    for (size_t t = 0; t < num_tasks; ++t) fn(t);
    return;
  }
  std::atomic<size_t> next{0};
  auto work = [&] {
    for (size_t t = next.fetch_add(1, std::memory_order_relaxed); t < num_tasks;
         t = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(t);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(work);
  work();
  for (auto& th : pool) th.join();
}

}  // namespace blend
