#include "common/scheduler.h"

#include <chrono>
#include <exception>

#include "common/telemetry.h"

namespace blend {

namespace {

/// Identifies the pool (if any) the current thread belongs to. A worker
/// belongs to exactly one scheduler; threads of other schedulers and client
/// threads are "external" and steal instead of owning a deque.
thread_local const Scheduler* tls_owner = nullptr;
thread_local size_t tls_index = 0;

/// Pool utilization metrics, summed over every live Scheduler in the
/// process. Cached pointers: registration happens once, recording is a
/// relaxed sharded add.
struct SchedulerMetrics {
  Counter* tasks;
  Counter* local_pops;
  Counter* steals;
  Gauge* workers;
  Gauge* sleeping;

  static const SchedulerMetrics& Get() {
    static const SchedulerMetrics m = [] {
      auto& reg = MetricsRegistry::Global();
      SchedulerMetrics out;
      out.tasks = reg.GetCounter("blend_scheduler_tasks_total",
                                 "Tasks executed by scheduler task groups.");
      out.local_pops = reg.GetCounter(
          "blend_scheduler_local_pops_total",
          "Chunks a worker claimed from its own deque (LIFO pop).");
      out.steals = reg.GetCounter(
          "blend_scheduler_steals_total",
          "Chunks claimed from another worker's deque (FIFO steal).");
      out.workers = reg.GetGauge("blend_scheduler_workers",
                                 "Pool worker threads currently alive.");
      out.sleeping = reg.GetGauge(
          "blend_scheduler_sleeping_workers",
          "Pool workers currently blocked on the idle condvar.");
      return out;
    }();
    return m;
  }
};

}  // namespace

/// One parallel-for invocation. Stack-allocated by the waiter; workers only
/// touch it between claiming a chunk and the final `done` increment.
struct Scheduler::Group {
  InvokeFn invoke = nullptr;
  void* ctx = nullptr;
  size_t num_tasks = 0;
  std::atomic<size_t> done{0};
  /// Set by the first failing task; publication to the waiter rides the
  /// release sequence of `done` (every later increment is an RMW).
  std::atomic<bool> failed{false};
  std::exception_ptr error;
};

struct Scheduler::WorkerQueue {
  std::mutex mu;
  std::deque<Chunk> items;
};

Scheduler::Scheduler(int num_threads) {
  const size_t total = ResolveThreads(num_threads);
  const size_t num_workers = total > 1 ? total - 1 : 0;
  queues_.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  SchedulerMetrics::Get().workers->Add(static_cast<int64_t>(num_workers));
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (auto& w : workers_) w.join();
  SchedulerMetrics::Get().workers->Add(-static_cast<int64_t>(workers_.size()));
}

Scheduler* Scheduler::Default() {
  // Leaked deliberately: joining pool threads during static destruction
  // deadlocks if any static destructor still runs queries.
  static Scheduler* pool = new Scheduler(0);
  return pool;
}

Scheduler* Scheduler::Serial() {
  static Scheduler* serial = new Scheduler(1);
  return serial;
}

size_t Scheduler::SelfIndex() const {
  return tls_owner == this ? tls_index : kExternal;
}

void Scheduler::PushChunk(size_t self, Chunk c) {
  WorkerQueue& q = self != kExternal
                       ? *queues_[self]
                       : *queues_[rr_.fetch_add(1) % queues_.size()];
  // pending_ rises before the chunk is visible so it can never dip below the
  // true queue population (TryAcquire decrements after removal).
  pending_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lk(q.mu);
    q.items.push_back(c);
  }
  // Wake one sleeper. The sleepers_ gate keeps the hot path (everyone busy,
  // splits flowing) free of the wakeup mutex; the sleep path re-checks
  // pending_ under idle_mu_ before blocking, so the gate cannot lose a
  // wakeup.
  if (sleepers_.load() > 0) {
    std::lock_guard<std::mutex> lk(idle_mu_);
    idle_cv_.notify_one();
  }
}

bool Scheduler::TryAcquire(size_t self, const Group* filter, Chunk* out) {
  const size_t n = queues_.size();
  if (self != kExternal) {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mu);
    for (auto it = q.items.rbegin(); it != q.items.rend(); ++it) {
      if (filter == nullptr || it->group == filter) {
        *out = *it;
        q.items.erase(std::next(it).base());
        pending_.fetch_sub(1);
        SchedulerMetrics::Get().local_pops->Increment();
        return true;
      }
    }
  }
  const size_t start = self != kExternal ? self + 1 : rr_.fetch_add(1);
  for (size_t i = 0; i < n; ++i) {
    const size_t victim = (start + i) % n;
    if (victim == self) continue;
    WorkerQueue& q = *queues_[victim];
    std::lock_guard<std::mutex> lk(q.mu);
    for (auto it = q.items.begin(); it != q.items.end(); ++it) {
      if (filter == nullptr || it->group == filter) {
        *out = *it;
        q.items.erase(it);
        pending_.fetch_sub(1);
        SchedulerMetrics::Get().steals->Increment();
        return true;
      }
    }
  }
  return false;
}

bool Scheduler::RunTask(Group* g, size_t index) {
  SchedulerMetrics::Get().tasks->Increment();
  if (!g->failed.load(std::memory_order_acquire)) {
    try {
      g->invoke(g->ctx, index);
    } catch (...) {
      bool expected = false;
      if (g->failed.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        g->error = std::current_exception();
      }
    }
  }
  // Everything needed after the increment is read before it: the waiter is
  // free to destroy the (stack-allocated) group the instant it observes
  // done == num_tasks, so the final incrementer must not touch *g again.
  const size_t num_tasks = g->num_tasks;
  return g->done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_tasks;
}

void Scheduler::RunChunk(size_t self, Chunk c) {
  // Eager binary splitting: share the upper half at every level so thieves
  // find large contiguous ranges, then run exactly one task. The owner pops
  // the remainder back newest-first, walking its range in ascending task
  // order.
  while (c.end - c.begin > 1) {
    const size_t mid = c.begin + (c.end - c.begin) / 2;
    PushChunk(self, {c.group, mid, c.end});
    c.end = mid;
  }
  if (RunTask(c.group, c.begin)) NotifyGroupDone();
}

void Scheduler::NotifyGroupDone() {
  // Touches only scheduler members (the group may be a waiter's dead stack
  // frame by now). notify under the lock so a waiter checking its predicate
  // cannot slip between the check and the wait.
  std::lock_guard<std::mutex> lk(done_mu_);
  done_cv_.notify_all();
}

void Scheduler::Execute(size_t num_tasks, InvokeFn invoke, void* ctx) {
  Group g;
  g.invoke = invoke;
  g.ctx = ctx;
  g.num_tasks = num_tasks;

  const size_t self = SelfIndex();
  PushChunk(self, {&g, 0, num_tasks});

  // Wait by helping: claim chunks of this group only (own deque first, then
  // steal), so a nested submitter never buries its stack under unrelated
  // long-running tasks. When nothing is claimable the stragglers are already
  // running on other threads; spin briefly (a morsel is tens of µs), then
  // block on the completion condvar.
  Chunk c;
  int idle_rounds = 0;
  while (g.done.load(std::memory_order_acquire) < num_tasks) {
    if (TryAcquire(self, &g, &c)) {
      RunChunk(self, c);
      idle_rounds = 0;
      continue;
    }
    if (++idle_rounds < 128) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait_for(lk, std::chrono::milliseconds(1), [&] {
      return g.done.load(std::memory_order_acquire) >= num_tasks;
    });
  }
  if (g.failed.load(std::memory_order_acquire)) {
    std::rethrow_exception(g.error);
  }
}

void Scheduler::WorkerLoop(size_t self) {
  tls_owner = this;
  tls_index = self;
  Chunk c;
  while (true) {
    if (TryAcquire(self, nullptr, &c)) {
      RunChunk(self, c);
      continue;
    }
    std::unique_lock<std::mutex> lk(idle_mu_);
    sleepers_.fetch_add(1);
    SchedulerMetrics::Get().sleeping->Add(1);
    idle_cv_.wait(lk, [&] { return stop_ || pending_.load() > 0; });
    sleepers_.fetch_sub(1);
    SchedulerMetrics::Get().sleeping->Add(-1);
    if (stop_) return;
  }
}

}  // namespace blend
