#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace blend {

/// Storage seam for the index's fixed-width arrays: the array either owns its
/// elements on the heap (bundles built from a lake, or loaded with the heap
/// `ReadSnapshot`) or views memory owned by someone else (mmap-backed
/// `OpenSnapshot` bundles, where the elements are served zero-copy out of the
/// file mapping). Store accessors read through `data()`/`operator[]` and never
/// see the difference.
///
/// Move-only: a view mode array holds a raw pointer whose lifetime is managed
/// by the snapshot storage attached to the owning IndexBundle, so implicit
/// copies (which could silently outlive that storage) are disallowed.
template <typename T>
class PodArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "PodArray elements must be memcpy-safe: they are serialized "
                "as raw bytes and served straight from a file mapping");

 public:
  PodArray() = default;
  PodArray(PodArray&& other) noexcept
      : owned_(std::move(other.owned_)), ptr_(other.ptr_), size_(other.size_) {
    other.ptr_ = nullptr;
    other.size_ = 0;
  }
  PodArray& operator=(PodArray&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      ptr_ = other.ptr_;
      size_ = other.size_;
      other.ptr_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  PodArray(const PodArray&) = delete;
  PodArray& operator=(const PodArray&) = delete;

  /// Takes ownership of `v`; the array serves elements from its own heap.
  void Own(std::vector<T> v) {
    owned_ = std::move(v);
    ptr_ = owned_.data();
    size_ = owned_.size();
  }

  /// Points the array at externally owned memory (a snapshot mapping). The
  /// caller guarantees [p, p + n) outlives this array.
  void BindView(const T* p, size_t n) {
    owned_.clear();
    owned_.shrink_to_fit();
    ptr_ = p;
    size_ = n;
  }

  const T* data() const { return ptr_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return ptr_[i]; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + size_; }
  std::span<const T> span() const { return {ptr_, size_}; }

 private:
  std::vector<T> owned_;
  const T* ptr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace blend
