#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace blend {

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Canonical cell normalization used throughout the index: trim + lowercase.
/// BLEND matches cell values exactly after this normalization (the paper's
/// inverted index stores tokenized cell values).
std::string NormalizeCell(std::string_view s);

/// Splits on a delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a delimiter.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// Parses a double if the entire string is numeric (after trim).
std::optional<double> ParseNumeric(std::string_view s);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string ReplaceAll(std::string s, std::string_view from, std::string_view to);

/// SQL string literal quoting: wraps in single quotes, doubling embedded ones.
std::string SqlQuote(std::string_view s);

/// Renders a list of values as a SQL IN-list body: 'a','b','c'.
std::string SqlInList(const std::vector<std::string>& values);

/// Renders a list of integers as a SQL IN-list body: 1,2,3.
std::string SqlInListInts(const std::vector<int64_t>& values);

}  // namespace blend
