#include "common/table_printer.h"

#include <cstdio>

namespace blend {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  // Formatting into a returned string, not a terminal write.
  // blend-lint: allow(no-raw-stdio)
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Pct(double ratio, int precision) {
  char buf[64];
  // Formatting into a returned string, not a terminal write.
  // blend-lint: allow(no-raw-stdio)
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string TablePrinter::Render(const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (r[i].size() > widths[i]) widths[i] = r[i].size();
    }
  }

  auto render_row = [&](const std::vector<std::string>& r) {
    std::string line = "|";
    for (size_t i = 0; i < header_.size(); ++i) {
      std::string cell = i < r.size() ? r[i] : "";
      line += ' ' + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + '\n';
  };

  std::string rule = "+";
  for (size_t w : widths) rule += std::string(w + 2, '-') + '+';
  rule += '\n';

  std::string out;
  if (!title.empty()) out += "== " + title + " ==\n";
  out += rule;
  out += render_row(header_);
  out += rule;
  for (const auto& r : rows_) out += render_row(r);
  out += rule;
  return out;
}

}  // namespace blend
