#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace blend {

/// Resolves a user-facing thread-count knob: 0 means "one per hardware
/// thread"; 1 and any negative value force serial execution. Shared by the
/// offline index build and the online query engine so both knobs read the
/// same way.
inline size_t ResolveThreads(int num_threads) {
  if (num_threads > 1) return static_cast<size_t>(num_threads);
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }
  return 1;
}

/// Concatenates per-task output buffers in task order — the second half of
/// the ParallelFor determinism idiom: workers write only their own
/// task-indexed slot, and the ordered concatenation makes the result
/// independent of which worker ran which task.
template <typename T>
std::vector<T> ConcatParts(std::vector<std::vector<T>> parts) {
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<T> out;
  out.reserve(total);
  for (const auto& part : parts) out.insert(out.end(), part.begin(), part.end());
  return out;
}

/// A shared work-stealing task scheduler: a persistent pool of worker
/// threads, each owning a deque of task chunks. Owners pop their newest
/// chunk (LIFO keeps recursively split ranges cache-hot); idle workers and
/// external waiters steal the oldest chunk from a victim (FIFO takes the
/// largest undivided range). Replaces the per-stage `std::thread` spawning
/// of the old `ParallelFor`, whose tens-of-µs setup dominated small seeker
/// queries.
///
/// Execution model:
///   - `ParallelFor(n, fn)` runs fn(t) for every t in [0, n) and blocks
///     until all tasks finished. The calling thread participates, so a pool
///     is never idle while its submitter spins.
///   - Nested submission is supported and cannot deadlock or oversubscribe:
///     a task that itself calls ParallelFor pushes the nested chunks onto
///     the worker's own deque and waits *by helping* — it only ever executes
///     chunks of the group it is waiting on, so blocked stacks stay bounded
///     by the nesting depth and no thread sleeps while its group has
///     claimable work.
///   - Any number of external (non-pool) threads may call ParallelFor
///     concurrently; groups share the pool and each caller helps drain its
///     own group. This is what the concurrent serving layer builds on.
///
/// Determinism is the caller's contract, unchanged from the old
/// ParallelFor: fn must write only to task-id-indexed slots, so the result
/// never depends on which worker ran which task or in what order tasks
/// finished.
///
/// Exceptions thrown by tasks are captured (first one wins; later tasks of
/// the group are skipped) and rethrown on the submitting thread.
class Scheduler {
 public:
  /// `num_threads` counts the submitting thread: a Scheduler(4) runs 3
  /// background workers plus the caller. 0 = one per hardware thread;
  /// 1 (and negative) spawns nothing and runs every ParallelFor inline.
  explicit Scheduler(int num_threads = 0);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Maximum number of threads a ParallelFor can occupy (workers + caller).
  size_t parallelism() const { return queues_.size() + 1; }

  /// Runs fn(t) for every t in [0, num_tasks); returns when all tasks have
  /// finished. Callable from any thread, including from inside a task.
  template <typename Fn>
  void ParallelFor(size_t num_tasks, const Fn& fn) {
    if (num_tasks == 0) return;
    if (queues_.empty() || num_tasks == 1) {
      for (size_t t = 0; t < num_tasks; ++t) fn(t);
      return;
    }
    Execute(
        num_tasks,
        [](void* f, size_t t) { (*static_cast<const Fn*>(f))(t); },
        const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// The process-wide pool, one worker per hardware thread: what engines use
  /// unless the caller supplies its own. Lazily constructed, never
  /// destroyed (worker threads must not be joined from static teardown).
  static Scheduler* Default();

  /// A process-wide zero-worker scheduler: ParallelFor runs inline. The
  /// explicit way to request serial execution through a `Scheduler*` knob.
  static Scheduler* Serial();

 private:
  struct Group;
  struct Chunk {
    Group* group;
    size_t begin;
    size_t end;
  };
  struct WorkerQueue;

  using InvokeFn = void (*)(void*, size_t);

  /// Index passed for threads that are not pool workers of this scheduler.
  static constexpr size_t kExternal = static_cast<size_t>(-1);

  void Execute(size_t num_tasks, InvokeFn invoke, void* ctx);
  void WorkerLoop(size_t self);
  /// Own-queue index of the calling thread, or kExternal.
  size_t SelfIndex() const;
  void PushChunk(size_t self, Chunk c);
  /// Claims one chunk: own queue newest-first, then steals oldest-first.
  /// With `filter` set, only chunks of that group are taken (help-first
  /// waiting).
  bool TryAcquire(size_t self, const Group* filter, Chunk* out);
  /// Splits a chunk down to single tasks (sharing the halves) and runs one.
  void RunChunk(size_t self, Chunk c);
  /// Returns true when this call performed the group's final task.
  static bool RunTask(Group* g, size_t index);
  void NotifyGroupDone();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // one per worker
  std::vector<std::thread> workers_;

  /// Chunks currently sitting in deques (claimed chunks excluded).
  std::atomic<size_t> pending_{0};
  /// Workers asleep on idle_cv_; lets PushChunk skip the wakeup mutex when
  /// everyone is already running.
  std::atomic<size_t> sleepers_{0};
  /// Round-robin victim cursor for external pushes and steal starts.
  std::atomic<size_t> rr_{0};

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  bool stop_ = false;  // guarded by idle_mu_

  /// Completion signaling for group waiters lives on the scheduler, not the
  /// group: a finishing worker must never touch group memory after its final
  /// `done` increment, or it would race the waiter destroying the group.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

}  // namespace blend
