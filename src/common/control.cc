#include "common/control.h"

#include <atomic>
#include <string>

namespace blend {
namespace {

double ToMillis(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

std::string FormatMillis(double ms) {
  char buf[48];
  // Formatting into a returned string, not a terminal write.
  // blend-lint: allow(no-raw-stdio)
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

/// Shared, thread-safe constraint state. Handles in one query (and nested
/// batch handles) point at a chain of these; the chain is at most two deep in
/// practice (caller control -> batch control). All flags are sticky and use
/// relaxed atomics: cancellation/exhaustion only need eventual visibility,
/// not ordering of surrounding memory, and the query's own result is
/// discarded once any flag trips.
struct QueryControl::State {
  std::shared_ptr<State> parent;

  std::atomic<bool> cancelled{false};

  bool has_deadline = false;
  std::chrono::steady_clock::time_point start{};
  std::chrono::steady_clock::time_point deadline{};
  std::chrono::nanoseconds budget{0};

  int64_t mem_limit = 0;  // 0 = untracked
  std::atomic<int64_t> mem_used{0};
  std::atomic<int64_t> mem_peak{0};
  std::atomic<bool> exhausted{false};
  std::atomic<int64_t> exhausted_request{0};
};

std::shared_ptr<QueryControl::State> QueryControl::EnsureState(
    QueryControl* c) {
  if (c->state_ == nullptr) c->state_ = std::make_shared<State>();
  return c->state_;
}

QueryControl QueryControl::Cancellable() {
  QueryControl c;
  EnsureState(&c);
  return c;
}

QueryControl QueryControl::WithDeadline(std::chrono::nanoseconds budget) {
  QueryControl c;
  c.SetDeadline(budget);
  return c;
}

QueryControl QueryControl::WithMemoryBudget(int64_t bytes) {
  QueryControl c;
  c.SetMemoryBudget(bytes);
  return c;
}

QueryControl QueryControl::Nested(const QueryControl& parent) {
  QueryControl c;
  EnsureState(&c)->parent = parent.state_;
  return c;
}

QueryControl& QueryControl::SetDeadline(std::chrono::nanoseconds budget) {
  auto s = EnsureState(this);
  s->has_deadline = true;
  s->start = std::chrono::steady_clock::now();
  s->deadline = s->start + budget;
  s->budget = budget;
  return *this;
}

QueryControl& QueryControl::SetMemoryBudget(int64_t bytes) {
  EnsureState(this)->mem_limit = bytes;
  return *this;
}

void QueryControl::Cancel() const {
  if (state_ != nullptr) state_->cancelled.store(true, std::memory_order_relaxed);
}

bool QueryControl::cancelled() const {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_relaxed)) return true;
  }
  return false;
}

bool QueryControl::ShouldStop() const {
  bool any_deadline = false;
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_relaxed) ||
        s->exhausted.load(std::memory_order_relaxed)) {
      return true;
    }
    any_deadline = any_deadline || s->has_deadline;
  }
  if (!any_deadline) return false;
  const auto now = std::chrono::steady_clock::now();
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->has_deadline && now >= s->deadline) return true;
  }
  return false;
}

Status QueryControl::Check(const char* where) const {
  if (state_ == nullptr) return Status::OK();
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_relaxed)) {
      return Status::Cancelled(std::string("query cancelled during ") + where);
    }
    if (s->exhausted.load(std::memory_order_relaxed)) {
      return Status::ResourceExhausted(
          "query memory budget exhausted during " + std::string(where) +
          " (budget " + std::to_string(s->mem_limit) + " bytes, used " +
          std::to_string(s->mem_used.load(std::memory_order_relaxed)) +
          ", last request " +
          std::to_string(s->exhausted_request.load(std::memory_order_relaxed)) +
          ")");
    }
  }
  const auto now = std::chrono::steady_clock::now();
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->has_deadline && now >= s->deadline) {
      return Status::DeadlineExceeded(
          "query deadline exceeded during " + std::string(where) + " (" +
          FormatMillis(ToMillis(now - s->start)) + " ms elapsed, budget " +
          FormatMillis(ToMillis(s->budget)) + " ms)");
    }
  }
  return Status::OK();
}

Status QueryControl::ChargeMemory(int64_t bytes) const {
  if (state_ == nullptr || bytes <= 0) return Status::OK();
  for (State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    const int64_t used =
        s->mem_used.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Relaxed CAS-max high-water mark: observability only, so a lost race
    // between two concurrent charges merely under-reports by one delta.
    int64_t peak = s->mem_peak.load(std::memory_order_relaxed);
    while (used > peak &&
           !s->mem_peak.compare_exchange_weak(peak, used,
                                              std::memory_order_relaxed)) {
    }
    if (s->mem_limit > 0 && used > s->mem_limit) {
      // Roll the failed charge back everywhere it was applied (this state
      // and every ancestor already charged), then trip sticky.
      s->exhausted_request.store(bytes, std::memory_order_relaxed);
      s->exhausted.store(true, std::memory_order_relaxed);
      for (State* r = state_.get(); r != nullptr; r = r->parent.get()) {
        r->mem_used.fetch_sub(bytes, std::memory_order_relaxed);
        if (r == s) break;
      }
      return Status::ResourceExhausted(
          "query memory budget exhausted (budget " +
          std::to_string(s->mem_limit) + " bytes, requested " +
          std::to_string(bytes) + " more after " +
          std::to_string(used - bytes) + " in use)");
    }
  }
  return Status::OK();
}

void QueryControl::ReleaseMemory(int64_t bytes) const {
  if (state_ == nullptr || bytes <= 0) return;
  for (State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    s->mem_used.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

int64_t QueryControl::MemoryUsed() const {
  if (state_ == nullptr) return 0;
  return state_->mem_used.load(std::memory_order_relaxed);
}

int64_t QueryControl::PeakMemoryUsed() const {
  if (state_ == nullptr) return 0;
  return state_->mem_peak.load(std::memory_order_relaxed);
}

}  // namespace blend
