#pragma once

// Structural JSON validation for the introspection export surfaces (the
// event log's JSON-lines records and the Chrome trace-event documents).
// This is a well-formedness scanner, not a DOM parser: it verifies syntax
// (strings, numbers, nesting, commas) in one pass with no allocation
// proportional to input size, and reports the byte offset of the first
// defect in a descriptive Status — the same self-validating-exposition
// pattern as ValidatePrometheusText.

#include <string_view>

#include "common/status.h"

namespace blend {

/// OK iff `text` is exactly one well-formed JSON value (object, array,
/// string, number, true/false/null) with nothing but whitespace around it.
Status ValidateJson(std::string_view text);

/// Appends `s` to *out as a JSON string literal, escaping quotes,
/// backslashes, and control characters. The one JSON-string producer shared
/// by the event log and the trace exporter, so the validators above always
/// accept what the renderers emit.
void AppendJsonString(std::string_view s, std::string* out);

}  // namespace blend
