#pragma once

// Process-wide telemetry: a registry of named counters, gauges, and
// fixed-bucket latency histograms, plus a per-query trace API.
//
// Design constraints, in order:
//   1. The hot path must stay hot. Metric cells are sharded per worker and
//      updated with relaxed atomics; readers merge the shards. A query that
//      carries no trace performs no clock reads in the execution loop.
//   2. Instrumentation must never change results. Traces record what the
//      executor already decided (morsel geometry, merge order are untouched);
//      the determinism suite pins byte-identity with tracing on vs off.
//   3. Everything compiles out. Configuring with -DBLEND_TELEMETRY=OFF
//      defines BLEND_TELEMETRY_OFF and every recording call collapses to a
//      no-op via `if constexpr`, so the ≤2% serving overhead budget can be
//      audited against a true zero baseline.
//
// Timing discipline: this header and common/control.h are the only places
// the query path may read steady_clock (enforced by the `hot-clock` lint
// rule). Operators time themselves through TraceSpan/QueueWaitProbe, and
// serving surfaces observe latency through LatencyTimer.
//
// The export surfaces — RenderPrometheus() and the StatsTimeSeries ring of
// periodic snapshots (ProxySQL-style stats tables) — are what a future
// `blendd` daemon mounts onto its /metrics endpoint.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace blend {

#ifdef BLEND_TELEMETRY_OFF
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

namespace telemetry_internal {

/// Number of per-metric shards. Threads hash to a stable shard, so two pool
/// workers rarely contend on the same cache line. Power of two.
inline constexpr size_t kMetricShards = 16;

/// Stable shard index of the calling thread.
size_t ShardIndex();

/// Stable, process-unique serial id of the calling thread, assigned on first
/// use. Unlike ShardIndex() (which wraps modulo kMetricShards and so maps
/// many threads onto one shard) these never collide, which is what the trace
/// export needs: one timeline track per worker thread.
uint32_t TrackId();

/// A cache-line-isolated atomic cell; one per shard per metric.
struct alignas(64) MetricCell {
  std::atomic<int64_t> v{0};
};

/// Per-thread event tallies bumped by the posting codec. The codec layer
/// cannot depend on query traces (it has no query context), so it bumps
/// these thread-locals and TraceSpan folds the deltas into the active trace
/// at morsel-task granularity — each morsel task runs entirely on one
/// thread, so the delta is exactly that task's work.
struct HotPathCounters {
  int64_t posting_blocks_decoded = 0;
  int64_t gallop_seeks = 0;
};

HotPathCounters& ThreadHotPathCounters();

}  // namespace telemetry_internal

/// Monotonic counter. Add() is wait-free: one relaxed fetch_add on the
/// calling thread's shard. Value() merges the shards (approximate while
/// writers are active; exact once they quiesce).
class Counter {
 public:
  void Add(int64_t n) {
    if constexpr (!kTelemetryEnabled) return;
    cells_[telemetry_internal::ShardIndex()].v.fetch_add(n,
                                                         std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Value() const {
    int64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<telemetry_internal::MetricCell, telemetry_internal::kMetricShards>
      cells_;
};

/// A gauge tracked as a sum of signed deltas (Add(+1)/Add(-1)), so updates
/// stay sharded and wait-free; Value() merges. Suits occupancy-style gauges
/// (sleeping workers, pool size) where every setter knows its own delta.
class Gauge {
 public:
  void Add(int64_t n) {
    if constexpr (!kTelemetryEnabled) return;
    cells_[telemetry_internal::ShardIndex()].v.fetch_add(n,
                                                         std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<telemetry_internal::MetricCell, telemetry_internal::kMetricShards>
      cells_;
};

/// Histogram geometry: √2-multiplicative bucket upper bounds in seconds,
/// from 1µs to ~380s (58 finite bounds), plus the +Inf bucket. Two buckets
/// per latency octave keeps p99 interpolation error under ~20% anywhere in
/// the range with a fixed, allocation-free layout.
inline constexpr size_t kHistogramFiniteBounds = 58;
inline constexpr size_t kHistogramBuckets = kHistogramFiniteBounds + 1;

/// The shared bucket upper bounds (seconds), ascending.
const std::array<double, kHistogramFiniteBounds>& HistogramBounds();

/// A merged, point-in-time view of a Histogram; also the unit of arithmetic
/// for interval stats (Delta) and percentile estimation (Quantile).
struct HistogramSnapshot {
  /// Per-bucket (non-cumulative) observation counts; [kHistogramBuckets-1]
  /// is the +Inf bucket.
  std::array<int64_t, kHistogramBuckets> buckets{};
  int64_t count = 0;
  double sum_seconds = 0;

  /// This snapshot minus an earlier one: the observations of the interval.
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;

  /// Estimated q-quantile (q in [0,1]) in seconds, linearly interpolated
  /// within the containing bucket; 0 when empty. Observations in the +Inf
  /// bucket report the largest finite bound.
  double Quantile(double q) const;
};

/// Fixed-bucket latency histogram over HistogramBounds(). Observe() is
/// wait-free: a bucket lookup plus two relaxed adds on the caller's shard.
class Histogram {
 public:
  void Observe(double seconds);
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kHistogramBuckets> buckets{};
    std::atomic<int64_t> sum_nanos{0};
  };
  std::array<Shard, telemetry_internal::kMetricShards> shards_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's merged value at collection time.
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;        // counter / gauge
  HistogramSnapshot hist;   // histogram
};

/// All metrics at one instant, in deterministic (name) order, stamped with
/// the process steady clock so interval rates need no wall-clock agreement.
struct RegistrySnapshot {
  int64_t steady_nanos = 0;
  std::vector<MetricSample> samples;

  const MetricSample* Find(const std::string& name) const;
};

/// Process-wide registry of named metrics. Registration (GetCounter /
/// GetGauge / GetHistogram) takes a mutex and is meant for cold paths —
/// call sites cache the returned pointer, which stays valid for the process
/// lifetime. Re-registering a name returns the existing instrument (the
/// kind must match; mismatches abort, they are build bugs).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help);

  /// Merged values of every registered metric, sorted by name.
  RegistrySnapshot Collect() const;

  /// Prometheus text exposition format (# HELP / # TYPE + samples);
  /// histograms render cumulative `_bucket{le="..."}` series plus `_sum`
  /// and `_count`. Deterministic order.
  std::string RenderPrometheus() const;

  /// The process-wide registry every subsystem records into.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // std::map: deterministic iteration
};

/// Structural validation of a Prometheus text exposition: every line is a
/// comment or a `name[{labels}] value` sample, metric names are legal, no
/// metric is TYPE-declared or sampled twice, and values parse. Used by the
/// stats-mode smoke check so CI pins the scrape surface stays well-formed.
Status ValidatePrometheusText(const std::string& text);

/// A bounded ring of periodic registry snapshots — the ProxySQL-style
/// time-series layer. Sampling and rendering are mutex-guarded (cold path);
/// the metrics themselves stay wait-free.
class StatsTimeSeries {
 public:
  explicit StatsTimeSeries(size_t capacity = 64);

  /// Appends registry.Collect() to the ring, evicting the oldest entry past
  /// capacity.
  void Sample(const MetricsRegistry& registry);

  size_t size() const;
  /// i=0 is the oldest retained snapshot.
  RegistrySnapshot at(size_t i) const;

  /// Human table of per-interval rates between consecutive snapshots:
  /// interval seconds, delta and rate of `counter_name`, and count/p50/p95/
  /// p99 of `histogram_name` over the interval.
  std::string RenderTable(const std::string& counter_name,
                          const std::string& histogram_name) const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<RegistrySnapshot> ring_;
};

/// Stages of the online query path a trace can attribute time to. The names
/// double as the QueryControl stage labels inside the SQL executor, so error
/// messages ("deadline exceeded at scan") and trace rows stay in the same
/// vocabulary.
enum class TraceStage : uint8_t {
  kPlanBuild,
  kOptimize,
  kPlanStep,
  kSeeker,
  kScan,
  kJoinBuild,
  kJoinProbe,
  kGallopIntersect,
  kGallopEmit,
  kFusedScan,
  kFusedProject,
  kFilter,
  kProjection,
  kAggregation,
  kAggregationMerge,
  kMcValidation,
  kQueueWait,
  kNumStages,
};

constexpr size_t kNumTraceStages = static_cast<size_t>(TraceStage::kNumStages);

constexpr const char* TraceStageName(TraceStage s) {
  switch (s) {
    case TraceStage::kPlanBuild: return "plan build";
    case TraceStage::kOptimize: return "optimize";
    case TraceStage::kPlanStep: return "plan step";
    case TraceStage::kSeeker: return "seeker";
    case TraceStage::kScan: return "scan";
    case TraceStage::kJoinBuild: return "join build";
    case TraceStage::kJoinProbe: return "join probe";
    case TraceStage::kGallopIntersect: return "gallop intersect";
    case TraceStage::kGallopEmit: return "gallop emit";
    case TraceStage::kFusedScan: return "fused scan";
    case TraceStage::kFusedProject: return "fused project";
    case TraceStage::kFilter: return "filter";
    case TraceStage::kProjection: return "projection";
    case TraceStage::kAggregation: return "aggregation";
    case TraceStage::kAggregationMerge: return "aggregation merge";
    case TraceStage::kMcValidation: return "mc validation";
    case TraceStage::kQueueWait: return "queue wait";
    case TraceStage::kNumStages: return "?";
  }
  return "?";
}

/// Event tallies a trace carries alongside stage timings.
enum class TraceCounter : uint8_t {
  kEngineQueries,
  kPostingBlocksDecoded,
  kGallopSeeks,
  kMcCandidateRows,
  kMcBloomPassRows,
  kMcValidatedRows,
  kNumCounters,
};

constexpr size_t kNumTraceCounters =
    static_cast<size_t>(TraceCounter::kNumCounters);

constexpr const char* TraceCounterName(TraceCounter c) {
  switch (c) {
    case TraceCounter::kEngineQueries: return "engine_queries";
    case TraceCounter::kPostingBlocksDecoded: return "posting_blocks_decoded";
    case TraceCounter::kGallopSeeks: return "gallop_seeks";
    case TraceCounter::kMcCandidateRows: return "mc_candidate_rows";
    case TraceCounter::kMcBloomPassRows: return "mc_bloom_pass_rows";
    case TraceCounter::kMcValidatedRows: return "mc_validated_rows";
    case TraceCounter::kNumCounters: return "?";
  }
  return "?";
}

/// One stage's accumulated totals in a finished trace.
struct StageSummary {
  TraceStage stage = TraceStage::kNumStages;
  double seconds = 0;
  int64_t tasks = 0;
  int64_t rows = 0;
};

/// The finished, copyable form of a trace: what ExecutionReport carries.
/// All fields zeroed by default, so an untraced report is all zeros.
struct QueryTraceSummary {
  std::vector<StageSummary> stages;  // touched stages only, enum order
  std::array<int64_t, kNumTraceCounters> counters{};

  double StageSeconds(TraceStage s) const;
  int64_t StageRows(TraceStage s) const;
  int64_t CounterValue(TraceCounter c) const {
    return counters[static_cast<size_t>(c)];
  }
  /// This summary minus an earlier one of the same trace: the stage totals
  /// and counters accumulated in between (all-zero stages dropped). Lets a
  /// multi-statement run attribute one shared trace to its statements.
  QueryTraceSummary Delta(const QueryTraceSummary& earlier) const;
  /// Human "trace anatomy" table: one row per touched stage, then counters.
  std::string ToString() const;
};

/// One captured morsel-task span: stage, start offset and duration relative
/// to the trace's capture epoch, and the recording thread's track id. Only
/// recorded when span capture is explicitly enabled on the trace.
struct CapturedSpan {
  TraceStage stage = TraceStage::kNumStages;
  int64_t start_nanos = 0;
  int64_t dur_nanos = 0;
  uint32_t track = 0;
};

/// A per-query trace: per-stage {nanos, tasks, rows} cells plus event
/// counters, recorded concurrently by morsel tasks with relaxed atomics.
/// The scheduler's group-completion barrier orders all task recordings
/// before Summary() runs, so merged totals are exact. Stack-allocated by
/// the driver (core::Blend, tests, benches) and threaded through
/// QueryOptions::trace; a null trace pointer disables every recording site.
class QueryTrace {
 public:
  QueryTrace();
  ~QueryTrace();
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  void AddStage(TraceStage s, int64_t nanos, int64_t tasks) {
    if constexpr (!kTelemetryEnabled) return;
    auto& cell = stages_[static_cast<size_t>(s)];
    cell.nanos.fetch_add(nanos, std::memory_order_relaxed);
    cell.tasks.fetch_add(tasks, std::memory_order_relaxed);
  }
  void AddRows(TraceStage s, int64_t rows) {
    if constexpr (!kTelemetryEnabled) return;
    stages_[static_cast<size_t>(s)].rows.fetch_add(rows,
                                                   std::memory_order_relaxed);
  }
  void AddCounter(TraceCounter c, int64_t n) {
    if constexpr (!kTelemetryEnabled) return;
    counters_[static_cast<size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }

  QueryTraceSummary Summary() const;

  /// Opt-in per-span capture for timeline export. Off (the default), span
  /// recording stays the pair of relaxed adds above; on, each finished
  /// TraceSpan also appends a CapturedSpan (mutex-guarded, bounded by
  /// `max_spans`; overflow increments a drop counter instead of growing).
  /// Capture never changes morsel geometry or results — it records what the
  /// executor already decided, like the rest of the trace.
  void EnableSpanCapture(size_t max_spans = 1 << 16);
  bool capturing_spans() const { return capture_ != nullptr; }
  void CaptureSpan(TraceStage stage,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end);
  /// Captured spans in deterministic (start, track, stage) order; clears the
  /// buffer. Empty when capture was never enabled.
  std::vector<CapturedSpan> TakeSpans();
  int64_t DroppedSpans() const;

 private:
  struct StageCell {
    std::atomic<int64_t> nanos{0};
    std::atomic<int64_t> tasks{0};
    std::atomic<int64_t> rows{0};
  };
  struct SpanCapture;  // defined in telemetry.cc

  std::array<StageCell, kNumTraceStages> stages_{};
  std::array<std::atomic<int64_t>, kNumTraceCounters> counters_{};
  std::unique_ptr<SpanCapture> capture_;
};

/// RAII span: attributes its lifetime (and the thread's hot-path counter
/// deltas — posting blocks decoded, gallop seeks) to one stage of a trace.
/// Used at morsel-task granularity inside the executor and for coarse
/// single-thread stages (optimize, plan step, seeker). Inert — not even a
/// clock read — when `trace` is null or telemetry is compiled out.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, TraceStage stage) : trace_(trace), stage_(stage) {
    if constexpr (!kTelemetryEnabled) return;
    if (trace_ == nullptr) return;
    hot_ = telemetry_internal::ThreadHotPathCounters();
    start_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan() {
    if constexpr (!kTelemetryEnabled) return;
    if (trace_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    const auto& hot = telemetry_internal::ThreadHotPathCounters();
    trace_->AddStage(
        stage_,
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_).count(),
        1);
    trace_->AddCounter(TraceCounter::kPostingBlocksDecoded,
                       hot.posting_blocks_decoded - hot_.posting_blocks_decoded);
    trace_->AddCounter(TraceCounter::kGallopSeeks,
                       hot.gallop_seeks - hot_.gallop_seeks);
    if (trace_->capturing_spans()) trace_->CaptureSpan(stage_, start_, end);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  QueryTrace* trace_;
  TraceStage stage_;
  std::chrono::steady_clock::time_point start_{};
  telemetry_internal::HotPathCounters hot_{};
};

/// Measures scheduler dispatch latency for one parallel stage: created
/// before the ParallelFor, the first task to start records the elapsed time
/// as the trace's queue-wait span. One atomic_flag race decides the winner;
/// losers pay a single test_and_set. Inert when `trace` is null.
class QueueWaitProbe {
 public:
  explicit QueueWaitProbe(QueryTrace* trace) : trace_(trace) {
    if constexpr (!kTelemetryEnabled) return;
    if (trace_ == nullptr) return;
    created_ = std::chrono::steady_clock::now();
  }
  QueueWaitProbe(const QueueWaitProbe&) = delete;
  QueueWaitProbe& operator=(const QueueWaitProbe&) = delete;

  void NoteTaskStart() {
    if constexpr (!kTelemetryEnabled) return;
    if (trace_ == nullptr) return;
    if (recorded_.test_and_set(std::memory_order_relaxed)) return;
    const auto now = std::chrono::steady_clock::now();
    trace_->AddStage(
        TraceStage::kQueueWait,
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - created_)
            .count(),
        1);
  }

 private:
  QueryTrace* trace_;
  std::chrono::steady_clock::time_point created_{};
  std::atomic_flag recorded_ = ATOMIC_FLAG_INIT;
};

/// RAII latency observer for registry histograms: the serving surfaces
/// (sql::Engine, core::Blend) time themselves through this instead of raw
/// clock reads. No-op when `hist` is null or telemetry is compiled out.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* hist) : hist_(hist) {
    if constexpr (!kTelemetryEnabled) return;
    if (hist_ == nullptr) return;
    start_ = std::chrono::steady_clock::now();
  }
  ~LatencyTimer() {
    if constexpr (!kTelemetryEnabled) return;
    if (hist_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    hist_->Observe(std::chrono::duration<double>(end - start_).count());
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_{};
};

/// Posting-codec event hooks (called from index/codec on block decode and
/// gallop seek). They bump the thread-local tallies TraceSpan attributes to
/// morsel tasks and the process-wide registry counters. Defined out of line
/// so the codec header stays free of registry plumbing.
void NotePostingBlockDecoded();
void NoteGallopSeek();

/// Renders captured spans as a Chrome trace-event JSON document (the format
/// Perfetto and chrome://tracing load): one "X" complete event per span with
/// microsecond ts/dur, one timeline track (tid) per recording worker thread,
/// plus "M" thread_name metadata events. Deterministic for a fixed span list.
std::string RenderChromeTrace(const std::vector<CapturedSpan>& spans);

/// Structural validation of a Chrome trace-event JSON document, mirroring
/// ValidatePrometheusText: the document must be well-formed JSON with a
/// traceEvents array whose every event carries name/ph/pid/tid, "X" events
/// carry ts and dur, and the event count matches the renderer's contract.
/// Used by the --trace-out smoke checks so CI pins the export surface.
Status ValidateChromeTraceJson(const std::string& text);

}  // namespace blend
