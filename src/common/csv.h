#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace blend {

/// Minimal RFC-4180-ish CSV support for loading user tables in examples and
/// exporting experiment results. Handles quoted fields with embedded commas,
/// quotes and newlines.
struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. First record becomes the header.
Result<CsvData> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvData> ReadCsvFile(const std::string& path);

/// Serializes rows to CSV text (quoting where needed).
std::string WriteCsv(const CsvData& data);

}  // namespace blend
