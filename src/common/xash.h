#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace blend {

/// XASH: the hash-based row signature from MATE (Esmailoghli et al., VLDB'22),
/// used by BLEND as the `SuperKey` column of the unified AllTables index.
///
/// Each cell value is hashed into a 64-bit word that encodes
///   (a) its least-frequent characters at character-and-position dependent bit
///       positions, and
///   (b) a length bucket in a dedicated segment,
/// and a row's super key is the bitwise OR of the hashes of all its cells.
///
/// The signature is a Bloom-filter-style containment witness: for every value
/// v appearing in row r, `(SuperKey(r) & XashValue(v)) == XashValue(v)` holds,
/// so filtering candidate rows with the super key has 100% recall; false
/// positives are removed by exact validation at the application level.
class Xash {
 public:
  /// Number of bits reserved for the value-length segment (top bits).
  static constexpr int kLengthBits = 6;
  /// Number of least-frequent characters that contribute bits per value.
  static constexpr int kCharsPerValue = 2;

  /// Hash of a single cell value.
  static uint64_t HashValue(std::string_view value);

  /// Super key of a row: OR of the value hashes.
  static uint64_t SuperKey(const std::vector<std::string_view>& row);

  /// Containment test used by the MC seeker and by MATE: does the super key
  /// possibly contain every value of the query tuple?
  static bool MayContain(uint64_t super_key, uint64_t query_key) {
    return (super_key & query_key) == query_key;
  }

 private:
  /// English-letter frequency rank; rarer characters produce more selective
  /// bits (mirrors MATE's frequency-aware character selection).
  static int CharRarity(unsigned char c);
};

}  // namespace blend
