#include "common/eventlog.h"

#include <cstdio>

#include "common/json_check.h"

namespace blend {
namespace {

/// Shortest round-trippable rendering for durations; same contract as the
/// Prometheus renderer's value formatting.
std::string FmtDouble(double v) {
  char buf[64];
  // Formatting into a returned string, not a terminal write.
  // blend-lint: allow(no-raw-stdio)
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Fixed-width lowercase hex for the statement fingerprint. Rendered as a
/// JSON string because 64-bit values don't survive a double round-trip.
std::string FmtFingerprint(uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

/// One ring slot: the Vyukov sequence plus the pending event. `seq` encodes
/// slot state relative to the ticket counters — equal to the producer ticket
/// when free, ticket+1 when filled — so producers and consumers coordinate
/// with one acquire load and one release store per side.
struct EventLog::Slot {
  std::atomic<size_t> seq{0};
  QueryEvent event;
};

EventLog::EventLog(size_t capacity) {
  size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  slots_ = std::make_unique<Slot[]>(cap);
  for (size_t i = 0; i < cap; ++i) {
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }
  mask_ = cap - 1;
}

EventLog::~EventLog() = default;

void EventLog::Record(QueryEvent event) {
  if constexpr (!kTelemetryEnabled) return;
  if (event.slow) slow_.fetch_add(1, std::memory_order_relaxed);
  size_t pos = enqueue_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const size_t seq = slot.seq.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_.compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
        slot.event = std::move(event);
        slot.seq.store(pos + 1, std::memory_order_release);
        recorded_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // CAS refreshed `pos`; retry with the new ticket.
    } else if (dif < 0) {
      // The slot still holds an undrained event a full lap behind: ring full.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    } else {
      pos = enqueue_.load(std::memory_order_relaxed);
    }
  }
}

size_t EventLog::Drain(EventSink* sink) {
  size_t drained = 0;
  size_t pos = dequeue_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const size_t seq = slot.seq.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
    if (dif == 0) {
      if (dequeue_.compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
        if (sink != nullptr) sink->Write(RenderJson(slot.event));
        slot.event = QueryEvent();  // release the slow-trace string, if any
        slot.seq.store(pos + mask_ + 1, std::memory_order_release);
        ++drained;
        ++pos;
      }
    } else if (dif < 0) {
      return drained;  // ring empty (or a producer mid-publish)
    } else {
      pos = dequeue_.load(std::memory_order_relaxed);
    }
  }
}

std::string EventLog::RenderJson(const QueryEvent& event) {
  std::string out = "{\"fingerprint\":\"";
  out += FmtFingerprint(event.fingerprint);
  out += "\",\"outcome\":\"";
  out += StatusCodeName(event.outcome);
  out += "\",\"seconds\":";
  out += FmtDouble(event.seconds);
  out += ",\"peak_memory\":";
  out += std::to_string(event.peak_memory);
  out += ",\"control_tripped\":";
  out += event.control_tripped ? "true" : "false";
  out += ",\"slow\":";
  out += event.slow ? "true" : "false";
  out += ",\"stages\":{";
  bool first = true;
  for (const StageSummary& s : event.summary.stages) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(TraceStageName(s.stage), &out);
    out += ":{\"seconds\":";
    out += FmtDouble(s.seconds);
    out += ",\"tasks\":";
    out += std::to_string(s.tasks);
    out += ",\"rows\":";
    out += std::to_string(s.rows);
    out += "}";
  }
  out += "},\"counters\":{";
  first = true;
  for (size_t i = 0; i < kNumTraceCounters; ++i) {
    if (event.summary.counters[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    AppendJsonString(TraceCounterName(static_cast<TraceCounter>(i)), &out);
    out += ":";
    out += std::to_string(event.summary.counters[i]);
  }
  out += "}";
  if (!event.trace_text.empty()) {
    out += ",\"trace\":";
    AppendJsonString(event.trace_text, &out);
  }
  out += "}";
  return out;
}

Status ValidateEventLogJson(const std::string& text) {
  static constexpr const char* kRequired[] = {
      "\"fingerprint\":", "\"outcome\":", "\"seconds\":", "\"peak_memory\":"};
  size_t line_no = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    ++line_no;
    const Status st = ValidateJson(line);
    if (!st.ok()) {
      return Status::InvalidArgument("event log line " +
                                     std::to_string(line_no) + ": " +
                                     st.message());
    }
    if (line.front() != '{') {
      return Status::InvalidArgument("event log line " +
                                     std::to_string(line_no) +
                                     ": not a JSON object");
    }
    for (const char* key : kRequired) {
      if (line.find(key) == std::string_view::npos) {
        return Status::InvalidArgument("event log line " +
                                       std::to_string(line_no) +
                                       ": missing field " + key);
      }
    }
  }
  return Status::OK();
}

}  // namespace blend
