#pragma once

#include <chrono>

namespace blend {

/// Monotonic wall-clock stopwatch used by the optimizer's learned cost model
/// and by the benchmark harnesses.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace blend
