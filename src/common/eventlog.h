#pragma once

// Structured query event log: one JSON-lines record per finished query
// (fingerprint, outcome, per-stage timings, control trips, peak memory),
// buffered in a lock-free bounded MPMC ring so serving threads never block
// on the sink. The driver (core::Blend) records events; whoever owns the
// log drains it into a pluggable EventSink at its leisure. Rendering to
// JSON happens at drain time on the consumer, so the serving hot path pays
// only a struct enqueue. A slow-query threshold additionally captures the
// full trace anatomy for offending queries. Recording compiles out with
// BLEND_TELEMETRY=OFF, like the rest of the telemetry layer, and never
// alters query execution.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/telemetry.h"

namespace blend {

/// One query's outcome record. POD-ish and copyable: the caller fills it
/// after the query finishes, so nothing here is read on the hot path.
struct QueryEvent {
  uint64_t fingerprint = 0;      ///< stable hash of the statement or plan
  StatusCode outcome = StatusCode::kOk;
  double seconds = 0;            ///< end-to-end wall time
  int64_t peak_memory = 0;       ///< high-water mark of charged bytes
  bool control_tripped = false;  ///< cancelled / deadline / memory budget
  bool slow = false;             ///< exceeded the slow-query threshold
  QueryTraceSummary summary;     ///< per-stage seconds/tasks/rows
  std::string trace_text;        ///< full trace anatomy (slow queries only)
};

/// Where drained event lines go. Write receives one complete JSON object
/// per call, without the trailing newline.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void Write(const std::string& line) = 0;
};

/// Sink that accumulates lines into a newline-delimited string — the
/// in-memory form tests and the bench validate with ValidateEventLogJson.
class StringEventSink : public EventSink {
 public:
  void Write(const std::string& line) override {
    text_ += line;
    text_ += '\n';
  }
  const std::string& text() const { return text_; }
  void Clear() { text_.clear(); }

 private:
  std::string text_;
};

/// Bounded multi-producer/multi-consumer ring of pending events
/// (Vyukov-style sequence slots). Record never blocks and moves the event
/// into its slot without rendering — JSON rendering is deferred to Drain,
/// keeping the producer (serving) side to a struct enqueue. A full ring
/// drops the event and counts it, because observability must not create
/// backpressure on queries.
class EventLog {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit EventLog(size_t capacity = 1024);
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Enqueues `event` (by move). Thread-safe; drops (and counts) when the
  /// ring is full. No-op when telemetry is compiled out.
  void Record(QueryEvent event);

  /// Dequeues every buffered event, renders each to a JSON line and writes
  /// it to `sink` (null sink discards them). Thread-safe; returns the
  /// number of events drained by this call.
  size_t Drain(EventSink* sink);

  int64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Events recorded with `slow` set — i.e. full-trace captures.
  int64_t slow_captures() const {
    return slow_.load(std::memory_order_relaxed);
  }

  /// The JSON object for one event (no trailing newline). Deterministic:
  /// fixed key order, stages in enum order, only non-zero counters.
  static std::string RenderJson(const QueryEvent& event);

 private:
  struct Slot;

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
  std::atomic<size_t> enqueue_{0};
  std::atomic<size_t> dequeue_{0};
  std::atomic<int64_t> recorded_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> slow_{0};
};

/// OK iff `text` is a well-formed event log: every non-empty line is one
/// valid JSON object carrying the required fields (fingerprint, outcome,
/// seconds, peak_memory). Mirrors ValidatePrometheusText /
/// ValidateChromeTraceJson: the exposition surface ships its own checker.
Status ValidateEventLogJson(const std::string& text);

}  // namespace blend
