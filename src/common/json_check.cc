#include "common/json_check.h"

#include <cctype>
#include <string>

namespace blend {
namespace {

/// Recursive-descent scanner over `text`. `pos` always points at the next
/// unconsumed byte; every method returns false after recording the first
/// defect in `error` / `error_pos`.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  bool ScanValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting deeper than 64 levels");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("expected a value");
    switch (text_[pos_]) {
      case '{': return ScanObject(depth);
      case '[': return ScanArray(depth);
      case '"': return ScanString();
      case 't': return ScanLiteral("true");
      case 'f': return ScanLiteral("false");
      case 'n': return ScanLiteral("null");
      default: return ScanNumber();
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  size_t pos() const { return pos_; }
  const std::string& error() const { return error_; }
  size_t error_pos() const { return error_pos_; }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what;
      error_pos_ = pos_;
    }
    return false;
  }

  bool ScanLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Fail("expected '" + std::string(lit) + "'");
    }
    pos_ += lit.size();
    return true;
  }

  bool ScanString() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ScanNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      pos_ = start;
      return Fail("expected a value");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++frac;
      }
      if (frac == 0) return Fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++exp;
      }
      if (exp == 0) return Fail("digits required in exponent");
    }
    return true;
  }

  bool ScanObject(int depth) {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected a string key");
      }
      if (!ScanString()) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after key");
      }
      ++pos_;
      if (!ScanValue(depth + 1)) return false;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ScanArray(int depth) {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!ScanValue(depth + 1)) return false;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
  size_t error_pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) {
  Scanner s(text);
  if (!s.ScanValue(0)) {
    return Status::InvalidArgument("JSON defect at byte " +
                                   std::to_string(s.error_pos()) + ": " +
                                   s.error());
  }
  s.SkipSpace();
  if (s.pos() != text.size()) {
    return Status::InvalidArgument("trailing bytes after JSON value at byte " +
                                   std::to_string(s.pos()));
  }
  return Status::OK();
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out->push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace blend
