#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace blend {

/// Deterministic 64-bit PRNG (splitmix64 seeded xoshiro256**). All randomized
/// components of the library (lake generation, sampling, workload selection)
/// draw from an explicitly seeded Rng so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Standard normal via Box-Muller.
  double Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Zipf-distributed rank in [0, n) with exponent s, via rejection-free
  /// cumulative inversion over a cached table (callers reuse ZipfTable).
  struct ZipfTable {
    std::vector<double> cdf;
  };

  static ZipfTable MakeZipf(size_t n, double s) {
    ZipfTable t;
    t.cdf.resize(n);
    double sum = 0;
    for (size_t i = 0; i < n; ++i) sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    double acc = 0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s) / sum;
      t.cdf[i] = acc;
    }
    return t;
  }

  size_t Zipf(const ZipfTable& t) {
    double u = UniformDouble();
    // Binary search the CDF.
    size_t lo = 0, hi = t.cdf.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (t.cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < t.cdf.size() ? lo : t.cdf.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

  /// Sample m distinct indices from [0, n) (m <= n) in O(n).
  std::vector<size_t> SampleIndices(size_t n, size_t m) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < m && i + 1 < n; ++i) {
      std::swap(idx[i], idx[i + Uniform(n - i)]);
    }
    idx.resize(m < n ? m : n);
    return idx;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace blend
