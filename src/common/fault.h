#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace blend::fault {

/// Test-controlled fault injection for I/O seams. Production code marks each
/// fallible operation with a named injection point; tests arm failure
/// schedules against those names (or against global hit ordinals) to prove
/// every failure path returns a descriptive Status, retries transients, and
/// never publishes a partial artifact.
///
/// The registry is process-global and mutex-protected; the inert fast path
/// (nothing armed, the production case) is a single relaxed atomic load.

/// Sentinel Schedule::error value: instead of failing, the operation
/// transfers only half the requested bytes — exercises short-read/short-write
/// resume loops with real data, so a retried transfer still produces correct
/// file contents.
inline constexpr int kShortIo = -1;

struct Schedule {
  int skip = 0;   // successful passes before the first injected fault
  int count = 1;  // number of consecutive injected faults (then clean again)
  int error = 5;  // errno to simulate (EIO), or kShortIo
};

/// True when any schedule (or hit counting) is armed.
bool Enabled();

/// Arms hit counting with no scheduled failures: every injection point passes
/// but increments Hits(). Sizes an ordinal sweep.
void Arm();

/// Arms a failure schedule against the named injection point.
void Inject(const std::string& point, const Schedule& schedule);

/// Arms a single failure at the `ordinal`-th injection-point hit (0-based,
/// counted globally across all points since the last Reset) — the sweep mode:
/// count a clean run's Hits(), then fail each ordinal in turn.
void FailAtOrdinal(uint64_t ordinal, int error);

/// Injection-point hits since the last Reset (counted only while armed).
uint64_t Hits();

/// Disarms everything and zeroes the hit counter.
void Reset();

/// Called by production code at each injection point. Returns 0 to proceed,
/// kShortIo to simulate a partial transfer, or an errno value to simulate
/// failure (the caller sets errno and takes its normal error path). Inert
/// unless armed.
int Check(const char* point);

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

}  // namespace blend::fault
