#include "eval/metrics.h"

#include <algorithm>

namespace blend::eval {

double PrecisionAtK(const std::vector<int32_t>& ranked,
                    const std::unordered_set<int32_t>& relevant, size_t k,
                    bool penalize_missing) {
  size_t n = std::min(k, ranked.size());
  if (n == 0) return 0;
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (relevant.count(ranked[i]) > 0) ++hits;
  }
  double denom = penalize_missing ? static_cast<double>(k) : static_cast<double>(n);
  return static_cast<double>(hits) / denom;
}

double RecallAtK(const std::vector<int32_t>& ranked,
                 const std::unordered_set<int32_t>& relevant, size_t k) {
  if (relevant.empty()) return 0;
  size_t n = std::min(k, ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (relevant.count(ranked[i]) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double AveragePrecisionAtK(const std::vector<int32_t>& ranked,
                           const std::unordered_set<int32_t>& relevant, size_t k) {
  size_t n = std::min(k, ranked.size());
  if (n == 0 || relevant.empty()) return 0;
  double sum = 0;
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (relevant.count(ranked[i]) > 0) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  size_t denom = std::min(k, relevant.size());
  return denom == 0 ? 0 : sum / static_cast<double>(denom);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace blend::eval
