#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace blend::eval {

/// Retrieval metrics used throughout the evaluation (precision@k, recall@k,
/// MAP@k), matching the definitions of the union-search literature the paper
/// follows (§VIII-F).

/// Fraction of the top-k results that are relevant. When fewer than k results
/// were returned, the denominator is min(k, results.size()) if
/// `penalize_missing` is false, else k.
double PrecisionAtK(const std::vector<int32_t>& ranked,
                    const std::unordered_set<int32_t>& relevant, size_t k,
                    bool penalize_missing = false);

/// Fraction of the relevant set found in the top-k.
double RecallAtK(const std::vector<int32_t>& ranked,
                 const std::unordered_set<int32_t>& relevant, size_t k);

/// Mean average precision at k for a single query.
double AveragePrecisionAtK(const std::vector<int32_t>& ranked,
                           const std::unordered_set<int32_t>& relevant, size_t k);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

}  // namespace blend::eval
