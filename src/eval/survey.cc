#include "eval/survey.h"

#include "common/table_printer.h"

namespace blend::eval {

namespace {

SurveyResponse Make(bool industry, double q1, bool q2, bool rows, bool corr,
                    bool join, bool kw, bool mc, bool scripts, bool sql4, bool ask,
                    bool oss, bool comm, bool py, bool java, bool sql5, bool cpp,
                    SurveyResponse::Storage storage, SurveyResponse::SimpleApi q8,
                    SurveyResponse::ComplexApi q9) {
  SurveyResponse r;
  r.industry = industry;
  r.q1_single_search_pct = q1;
  r.q2_single_table_sufficient = q2;
  r.q3_rows = rows;
  r.q3_correlation = corr;
  r.q3_join = join;
  r.q3_keyword = kw;
  r.q3_mc_join = mc;
  r.q4_custom_scripts = scripts;
  r.q4_sql = sql4;
  r.q4_ask_people = ask;
  r.q4_open_source = oss;
  r.q4_commercial = comm;
  r.q5_python = py;
  r.q5_java = java;
  r.q5_sql = sql5;
  r.q5_cpp = cpp;
  r.q6_storage = storage;
  r.q7_would_use_dbms = true;  // unanimous in the study
  r.q8_simple = q8;
  r.q9_complex = q9;
  return r;
}

}  // namespace

const std::vector<SurveyResponse>& SurveyResponses() {
  using St = SurveyResponse::Storage;
  using S8 = SurveyResponse::SimpleApi;
  using C9 = SurveyResponse::ComplexApi;
  static const std::vector<SurveyResponse> kResponses = {
      // --- research participants (R1..R9) ---
      Make(false, 10.0, true, 1, 1, 1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, St::kDbms,
           S8::kBlend, C9::kBlend),
      Make(false, 15.0, false, 1, 1, 1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, St::kDbms,
           S8::kBlend, C9::kBlend),
      Make(false, 20.0, false, 1, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1, 1, 1, St::kDbms,
           S8::kBlend, C9::kBlend),
      Make(false, 25.0, false, 0, 1, 1, 1, 1, 1, 1, 0, 1, 0, 1, 1, 1, 1,
           St::kFileSystem, S8::kPython, C9::kBlend),
      Make(false, 30.0, false, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 1,
           St::kFileSystem, S8::kPython, C9::kBlend),
      Make(false, 35.0, false, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 1, 1, 0,
           St::kFileSystem, S8::kSql, C9::kBlend),
      Make(false, 40.0, false, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 1, 1, 0,
           St::kFileSystem, S8::kSql, C9::kBlend),
      Make(false, 45.0, false, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, St::kBoth,
           S8::kSql, C9::kBlend),
      Make(false, 27.5, false, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, St::kBoth,
           S8::kSql, C9::kPython),
      // --- industry participants (I1..I9) ---
      Make(true, 20.0, false, 1, 1, 1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, St::kDbms,
           S8::kBlend, C9::kBlend),
      Make(true, 25.0, false, 1, 1, 1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, St::kDbms,
           S8::kBlend, C9::kBlend),
      Make(true, 30.0, false, 1, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1, 1, 1, St::kDbms,
           S8::kBlend, C9::kBlend),
      Make(true, 35.0, false, 1, 1, 0, 0, 1, 1, 1, 1, 0, 0, 1, 1, 1, 1, St::kDbms,
           S8::kBlend, C9::kBlend),
      Make(true, 40.0, false, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 1, 1, 1, 1, St::kBoth,
           S8::kBlend, C9::kBlend),
      Make(true, 45.0, false, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 1, 1, 1, St::kBoth,
           S8::kPython, C9::kBlend),
      Make(true, 50.0, false, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, St::kBoth,
           S8::kSql, C9::kBlend),
      Make(true, 55.0, false, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, St::kBoth,
           S8::kSql, C9::kBlend),
      Make(true, 49.2, false, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, St::kBoth,
           S8::kSql, C9::kPython),
  };
  return kResponses;
}

SurveyAggregate Aggregate(const std::vector<SurveyResponse>& responses,
                          int industry_filter) {
  SurveyAggregate a;
  auto pct = [&](size_t count) {
    return a.n == 0 ? 0.0 : 100.0 * static_cast<double>(count) /
                                static_cast<double>(a.n);
  };
  size_t q2y = 0, rows = 0, corr = 0, join = 0, kw = 0, mc = 0;
  size_t scripts = 0, sql4 = 0, ask = 0, oss = 0, comm = 0;
  size_t py = 0, java = 0, sql5 = 0, cpp = 0;
  size_t dbms = 0, fs = 0, both = 0, q7 = 0;
  size_t b8 = 0, p8 = 0, s8 = 0, b9 = 0, p9 = 0;
  double q1_sum = 0;

  for (const auto& r : responses) {
    if (industry_filter == 0 && r.industry) continue;
    if (industry_filter == 1 && !r.industry) continue;
    ++a.n;
    q1_sum += r.q1_single_search_pct;
    q2y += r.q2_single_table_sufficient;
    rows += r.q3_rows;
    corr += r.q3_correlation;
    join += r.q3_join;
    kw += r.q3_keyword;
    mc += r.q3_mc_join;
    scripts += r.q4_custom_scripts;
    sql4 += r.q4_sql;
    ask += r.q4_ask_people;
    oss += r.q4_open_source;
    comm += r.q4_commercial;
    py += r.q5_python;
    java += r.q5_java;
    sql5 += r.q5_sql;
    cpp += r.q5_cpp;
    dbms += r.q6_storage == SurveyResponse::Storage::kDbms;
    fs += r.q6_storage == SurveyResponse::Storage::kFileSystem;
    both += r.q6_storage == SurveyResponse::Storage::kBoth;
    q7 += r.q7_would_use_dbms;
    b8 += r.q8_simple == SurveyResponse::SimpleApi::kBlend;
    p8 += r.q8_simple == SurveyResponse::SimpleApi::kPython;
    s8 += r.q8_simple == SurveyResponse::SimpleApi::kSql;
    b9 += r.q9_complex == SurveyResponse::ComplexApi::kBlend;
    p9 += r.q9_complex == SurveyResponse::ComplexApi::kPython;
  }
  if (a.n == 0) return a;
  a.q1_mean = q1_sum / static_cast<double>(a.n);
  a.q2_yes = pct(q2y);
  a.q2_no = pct(a.n - q2y);
  a.q3_rows = pct(rows);
  a.q3_correlation = pct(corr);
  a.q3_join = pct(join);
  a.q3_keyword = pct(kw);
  a.q3_mc = pct(mc);
  a.q4_scripts = pct(scripts);
  a.q4_sql = pct(sql4);
  a.q4_ask = pct(ask);
  a.q4_oss = pct(oss);
  a.q4_commercial = pct(comm);
  a.q5_python = pct(py);
  a.q5_java = pct(java);
  a.q5_sql = pct(sql5);
  a.q5_cpp = pct(cpp);
  a.q6_dbms = pct(dbms);
  a.q6_fs = pct(fs);
  a.q6_both = pct(both);
  a.q7_yes = pct(q7);
  a.q8_blend = pct(b8);
  a.q8_python = pct(p8);
  a.q8_sql = pct(s8);
  a.q9_blend = pct(b9);
  a.q9_python = pct(p9);
  return a;
}

std::string RenderUserStudyTable() {
  const auto& rs = SurveyResponses();
  SurveyAggregate res = Aggregate(rs, 0);
  SurveyAggregate ind = Aggregate(rs, 1);
  SurveyAggregate all = Aggregate(rs, -1);

  TablePrinter tp({"Question", "Research", "Industry", "All"});
  auto p = [](double v) { return TablePrinter::Fmt(v, 1) + "%"; };
  tp.AddRow({"Participants", std::to_string(res.n), std::to_string(ind.n),
             std::to_string(all.n)});
  tp.AddRow({"Q1 single-search success", p(res.q1_mean), p(ind.q1_mean),
             p(all.q1_mean)});
  tp.AddRow({"Q2 single table sufficient (Yes|No)",
             p(res.q2_yes) + "|" + p(res.q2_no), p(ind.q2_yes) + "|" + p(ind.q2_no),
             p(all.q2_yes) + "|" + p(all.q2_no)});
  tp.AddRow({"Q3 discovery for rows", p(res.q3_rows), p(ind.q3_rows), p(all.q3_rows)});
  tp.AddRow({"Q3 correlation discovery", p(res.q3_correlation),
             p(ind.q3_correlation), p(all.q3_correlation)});
  tp.AddRow({"Q3 join discovery", p(res.q3_join), p(ind.q3_join), p(all.q3_join)});
  tp.AddRow({"Q3 keyword search", p(res.q3_keyword), p(ind.q3_keyword),
             p(all.q3_keyword)});
  tp.AddRow({"Q3 multi-column join", p(res.q3_mc), p(ind.q3_mc), p(all.q3_mc)});
  tp.AddRow({"Q4 custom scripts", p(res.q4_scripts), p(ind.q4_scripts),
             p(all.q4_scripts)});
  tp.AddRow({"Q4 SQL queries", p(res.q4_sql), p(ind.q4_sql), p(all.q4_sql)});
  tp.AddRow({"Q4 asking people", p(res.q4_ask), p(ind.q4_ask), p(all.q4_ask)});
  tp.AddRow({"Q4 open source tools", p(res.q4_oss), p(ind.q4_oss), p(all.q4_oss)});
  tp.AddRow({"Q4 commercial tools", p(res.q4_commercial), p(ind.q4_commercial),
             p(all.q4_commercial)});
  tp.AddRow({"Q5 Python", p(res.q5_python), p(ind.q5_python), p(all.q5_python)});
  tp.AddRow({"Q5 Java", p(res.q5_java), p(ind.q5_java), p(all.q5_java)});
  tp.AddRow({"Q5 SQL", p(res.q5_sql), p(ind.q5_sql), p(all.q5_sql)});
  tp.AddRow({"Q5 C++", p(res.q5_cpp), p(ind.q5_cpp), p(all.q5_cpp)});
  tp.AddRow({"Q6 DBMS | Files | Both",
             p(res.q6_dbms) + "|" + p(res.q6_fs) + "|" + p(res.q6_both),
             p(ind.q6_dbms) + "|" + p(ind.q6_fs) + "|" + p(ind.q6_both),
             p(all.q6_dbms) + "|" + p(all.q6_fs) + "|" + p(all.q6_both)});
  tp.AddRow({"Q7 would use DBMS", p(res.q7_yes), p(ind.q7_yes), p(all.q7_yes)});
  tp.AddRow({"Q8 simple: BLEND|Python|SQL",
             p(res.q8_blend) + "|" + p(res.q8_python) + "|" + p(res.q8_sql),
             p(ind.q8_blend) + "|" + p(ind.q8_python) + "|" + p(ind.q8_sql),
             p(all.q8_blend) + "|" + p(all.q8_python) + "|" + p(all.q8_sql)});
  tp.AddRow({"Q9 complex: BLEND|Python", p(res.q9_blend) + "|" + p(res.q9_python),
             p(ind.q9_blend) + "|" + p(ind.q9_python),
             p(all.q9_blend) + "|" + p(all.q9_python)});
  return tp.Render("Table IX: user study (replayed response dataset)");
}

}  // namespace blend::eval
