#pragma once

#include <string>
#include <vector>

namespace blend::eval {

/// One anonymised response of the paper's user study (§VIII-I, Table IX).
/// A human-subject study cannot be re-run by a library; the repository ships
/// the response dataset (reconstructed from the statistics the paper reports,
/// see DESIGN.md §2) together with the aggregation pipeline that regenerates
/// Table IX from raw responses.
struct SurveyResponse {
  bool industry = false;  // false = research

  // Q1: How often do you find data within a single search? (0..100)
  double q1_single_search_pct = 0;
  // Q2: Is a single discovered table sufficient?
  bool q2_single_table_sufficient = false;
  // Q3: Most frequent discovery tasks (multi-select).
  bool q3_rows = false, q3_correlation = false, q3_join = false, q3_keyword = false,
       q3_mc_join = false;
  // Q4: How do you solve discovery tasks? (multi-select)
  bool q4_custom_scripts = false, q4_sql = false, q4_ask_people = false,
       q4_open_source = false, q4_commercial = false;
  // Q5: Preferred programming languages (multi-select).
  bool q5_python = false, q5_java = false, q5_sql = false, q5_cpp = false;
  // Q6: Where is your data lake stored?
  enum class Storage { kDbms, kFileSystem, kBoth } q6_storage = Storage::kDbms;
  // Q7: Would you use a DBMS with indexing/optimization for discovery?
  bool q7_would_use_dbms = false;
  // Q8: Preferred API for simple tasks.
  enum class SimpleApi { kBlend, kPython, kSql } q8_simple = SimpleApi::kBlend;
  // Q9: Preferred API for complex tasks.
  enum class ComplexApi { kBlend, kPython } q9_complex = ComplexApi::kBlend;
};

/// The 18-respondent dataset (9 research, 9 industry).
const std::vector<SurveyResponse>& SurveyResponses();

/// Aggregated percentages for one respondent group.
struct SurveyAggregate {
  size_t n = 0;
  double q1_mean = 0;
  double q2_yes = 0, q2_no = 0;
  double q3_rows = 0, q3_correlation = 0, q3_join = 0, q3_keyword = 0, q3_mc = 0;
  double q4_scripts = 0, q4_sql = 0, q4_ask = 0, q4_oss = 0, q4_commercial = 0;
  double q5_python = 0, q5_java = 0, q5_sql = 0, q5_cpp = 0;
  double q6_dbms = 0, q6_fs = 0, q6_both = 0;
  double q7_yes = 0;
  double q8_blend = 0, q8_python = 0, q8_sql = 0;
  double q9_blend = 0, q9_python = 0;
};

/// Aggregates a group (industry / research / all).
SurveyAggregate Aggregate(const std::vector<SurveyResponse>& responses,
                          int industry_filter /* -1 all, 0 research, 1 industry */);

/// Renders the full Table IX from the dataset.
std::string RenderUserStudyTable();

}  // namespace blend::eval
