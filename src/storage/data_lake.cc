#include "storage/data_lake.h"

namespace blend {

TableId DataLake::AddTable(Table table) {
  TableId id = static_cast<TableId>(tables_.size());
  by_name_.emplace(table.name(), id);
  tables_.push_back(std::move(table));
  return id;
}

TableId DataLake::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

size_t DataLake::TotalCells() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.NumCells();
  return n;
}

size_t DataLake::TotalRows() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.NumRows();
  return n;
}

size_t DataLake::TotalColumns() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.NumColumns();
  return n;
}

}  // namespace blend
