#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace blend {

/// Integer identifier of a table within a lake (the TableId column of the
/// AllTables index).
using TableId = int32_t;

/// A data lake: the catalog of tables over which discovery runs.
class DataLake {
 public:
  DataLake() = default;
  explicit DataLake(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a table; the lake owns it. Returns its TableId.
  TableId AddTable(Table table);

  size_t NumTables() const { return tables_.size(); }
  const Table& table(TableId id) const { return tables_[static_cast<size_t>(id)]; }
  Table& table(TableId id) { return tables_[static_cast<size_t>(id)]; }
  const std::vector<Table>& tables() const { return tables_; }

  /// Looks a table up by name; -1 when absent.
  TableId FindTable(const std::string& name) const;

  /// Total number of cells across all tables.
  size_t TotalCells() const;
  /// Total number of rows across all tables.
  size_t TotalRows() const;
  /// Total number of columns across all tables.
  size_t TotalColumns() const;

 private:
  std::string name_;
  std::vector<Table> tables_;
  std::unordered_map<std::string, TableId> by_name_;
};

}  // namespace blend
