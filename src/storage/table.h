#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"

namespace blend {

/// A column of string cells. Cells are stored raw; normalization (trim +
/// lowercase) happens at indexing time. Numeric typing is inferred: a column
/// is numeric when every non-empty cell parses as a number.
struct Column {
  std::string name;
  std::vector<std::string> cells;

  /// Generator-provided latent semantic domain. -1 when unknown (real data).
  /// Consumed only by the simulated semantic baselines (Starmie/DeepJoin);
  /// BLEND itself never reads it. See DESIGN.md §2.
  int domain_tag = -1;

  /// True when all non-empty cells parse as numbers (and at least one does).
  bool IsNumeric() const;

  /// Mean over numeric cells; nullopt when not numeric or empty.
  std::optional<double> NumericMean() const;
};

/// An in-memory relational table: the unit of discovery. Column-major.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  size_t NumColumns() const { return columns_.size(); }
  size_t NumRows() const { return columns_.empty() ? 0 : columns_[0].cells.size(); }
  size_t NumCells() const { return NumColumns() * NumRows(); }

  const Column& column(size_t c) const { return columns_[c]; }
  Column& column(size_t c) { return columns_[c]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Cell accessor; (row, col) must be in range.
  const std::string& At(size_t row, size_t col) const {
    return columns_[col].cells[row];
  }

  /// Adds an empty column; returns its index.
  size_t AddColumn(std::string name, int domain_tag = -1);

  /// Appends a row; `values` must match NumColumns().
  Status AppendRow(const std::vector<std::string>& values);

  /// Index of a column by name, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Builds a table from parsed CSV (header becomes column names).
  static Result<Table> FromCsv(std::string name, const CsvData& csv);

  /// Approximate in-memory footprint in bytes (cells + structure).
  size_t ApproxBytes() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace blend
