#include "storage/table.h"

#include "common/str_util.h"

namespace blend {

bool Column::IsNumeric() const {
  bool saw_number = false;
  for (const auto& c : cells) {
    std::string_view t = Trim(c);
    if (t.empty()) continue;
    if (!ParseNumeric(t).has_value()) return false;
    saw_number = true;
  }
  return saw_number;
}

std::optional<double> Column::NumericMean() const {
  double sum = 0;
  size_t n = 0;
  for (const auto& c : cells) {
    auto v = ParseNumeric(c);
    if (!v.has_value()) {
      if (!Trim(c).empty()) return std::nullopt;
      continue;
    }
    sum += *v;
    ++n;
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

size_t Table::AddColumn(std::string name, int domain_tag) {
  Column col;
  col.name = std::move(name);
  col.domain_tag = domain_tag;
  col.cells.resize(NumColumns() == 0 ? 0 : NumRows());
  columns_.push_back(std::move(col));
  return columns_.size() - 1;
}

Status Table::AppendRow(const std::vector<std::string>& values) {
  if (values.size() != NumColumns()) {
    return Status::InvalidArgument("row arity " + std::to_string(values.size()) +
                                   " != " + std::to_string(NumColumns()));
  }
  for (size_t c = 0; c < values.size(); ++c) columns_[c].cells.push_back(values[c]);
  return Status::OK();
}

std::optional<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<Table> Table::FromCsv(std::string name, const CsvData& csv) {
  Table t(std::move(name));
  for (const auto& h : csv.header) t.AddColumn(h);
  for (const auto& row : csv.rows) {
    std::vector<std::string> padded = row;
    padded.resize(csv.header.size());
    BLEND_RETURN_NOT_OK(t.AppendRow(padded));
  }
  return t;
}

size_t Table::ApproxBytes() const {
  size_t bytes = sizeof(Table) + name_.size();
  for (const auto& col : columns_) {
    bytes += sizeof(Column) + col.name.size();
    for (const auto& cell : col.cells) bytes += sizeof(std::string) + cell.size();
  }
  return bytes;
}

}  // namespace blend
