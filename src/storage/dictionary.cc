#include "storage/dictionary.h"

namespace blend {

CellId Dictionary::Intern(std::string_view normalized) {
  auto it = ids_.find(normalized);
  if (it != ids_.end()) return it->second;
  CellId id = static_cast<CellId>(values_.size());
  values_.emplace_back(normalized);
  ids_.emplace(std::string_view(values_.back()), id);
  return id;
}

CellId Dictionary::Find(std::string_view normalized) const {
  auto it = ids_.find(normalized);
  return it == ids_.end() ? kInvalidCellId : it->second;
}

size_t Dictionary::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& v : values_) bytes += v.size() + sizeof(std::string);
  // Hash-map overhead: bucket + node per entry (approximation).
  bytes += ids_.size() * (sizeof(void*) * 2 + sizeof(std::string_view) + sizeof(CellId));
  return bytes;
}

}  // namespace blend
