#include "storage/dictionary.h"

#include "common/hashing.h"

namespace blend {

CellId Dictionary::Intern(std::string_view normalized) {
  auto it = ids_.find(normalized);
  if (it != ids_.end()) return it->second;
  CellId id = static_cast<CellId>(values_.size());
  values_.emplace_back(normalized);
  ids_.emplace(std::string_view(values_.back()), id);
  return id;
}

CellId Dictionary::Find(std::string_view normalized) const {
  if (loaded()) {
    // Linear probing over the precomputed table. The load path guarantees at
    // least one empty slot, but the probe count is capped anyway so even an
    // adversarial table terminates.
    const size_t mask = hash_slots_.size() - 1;
    size_t idx = Fnv1a64(normalized) & mask;
    for (size_t probes = 0; probes < hash_slots_.size(); ++probes) {
      const CellId id = hash_slots_[idx];
      if (id == kInvalidCellId) return kInvalidCellId;
      if (Value(id) == normalized) return id;
      idx = (idx + 1) & mask;
    }
    return kInvalidCellId;
  }
  auto it = ids_.find(normalized);
  return it == ids_.end() ? kInvalidCellId : it->second;
}

size_t Dictionary::ApproxBytes() const {
  if (loaded()) {
    return offsets_.size() * sizeof(uint64_t) + blob_.size() +
           hash_slots_.size() * sizeof(CellId);
  }
  size_t bytes = 0;
  for (const auto& v : values_) bytes += v.size() + sizeof(std::string);
  // Hash-map overhead: bucket + node per entry (approximation).
  bytes +=
      ids_.size() * (sizeof(void*) * 2 + sizeof(std::string_view) + sizeof(CellId));
  return bytes;
}

}  // namespace blend
