#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/array_ref.h"

namespace blend {

class SnapshotCodec;

/// Identifier of an interned (normalized) cell value.
using CellId = uint32_t;

/// Sentinel for "value not present in the lake".
constexpr CellId kInvalidCellId = 0xFFFFFFFFu;

/// Interns normalized cell strings into dense CellIds. The AllTables index
/// stores CellIds instead of strings: this is both the dictionary encoding a
/// column store would apply to a low-cardinality nvarchar column and the key
/// space of the in-database hash index on CellValue.
///
/// Two physical modes behind one interface:
///   - Mutable (the builder's intern path): a deque of strings plus a hash
///     map, grown one Intern at a time.
///   - Snapshot-loaded: three fixed-width arrays — CSR offsets, the
///     concatenated value blob, and a precomputed open-addressing hash
///     table — served from a snapshot (zero-copy views for OpenSnapshot,
///     heap copies for ReadSnapshot). Loading performs no interning at all,
///     which is what makes snapshot loads an order of magnitude faster than
///     an index rebuild. A loaded dictionary is immutable: Intern must not
///     be called on it.
class Dictionary {
 public:
  /// Interns `normalized` (caller must have applied NormalizeCell). Mutable
  /// mode only.
  CellId Intern(std::string_view normalized);

  /// Looks up without interning; kInvalidCellId when absent.
  CellId Find(std::string_view normalized) const;

  /// The interned string for an id.
  std::string_view Value(CellId id) const {
    if (loaded()) {
      const uint64_t begin = offsets_[id];
      return {blob_.data() + begin, static_cast<size_t>(offsets_[id + 1] - begin)};
    }
    return values_[id];
  }

  size_t Size() const { return loaded() ? offsets_.size() - 1 : values_.size(); }

  /// Approximate footprint in bytes (strings + lookup structure).
  size_t ApproxBytes() const;

 private:
  friend class SnapshotCodec;

  bool loaded() const { return !offsets_.empty(); }

  // Mutable mode. deque keeps string addresses stable so the map's
  // string_view keys can alias the stored strings.
  std::deque<std::string> values_;
  std::unordered_map<std::string_view, CellId> ids_;

  // Snapshot-loaded mode; a non-empty offsets_ array switches the accessors
  // here. hash_slots_ is a power-of-two open-addressing table of CellIds
  // (empty slots hold kInvalidCellId) keyed by FNV-1a with linear probing —
  // a pure function of the value sequence, so it lives in the snapshot and
  // loads without any hashing.
  PodArray<uint64_t> offsets_;  // Size() + 1
  PodArray<char> blob_;
  PodArray<CellId> hash_slots_;
};

}  // namespace blend
