#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace blend {

/// Identifier of an interned (normalized) cell value.
using CellId = uint32_t;

/// Sentinel for "value not present in the lake".
constexpr CellId kInvalidCellId = 0xFFFFFFFFu;

/// Interns normalized cell strings into dense CellIds. The AllTables index
/// stores CellIds instead of strings: this is both the dictionary encoding a
/// column store would apply to a low-cardinality nvarchar column and the key
/// space of the in-database hash index on CellValue.
class Dictionary {
 public:
  /// Interns `normalized` (caller must have applied NormalizeCell).
  CellId Intern(std::string_view normalized);

  /// Looks up without interning; kInvalidCellId when absent.
  CellId Find(std::string_view normalized) const;

  /// The interned string for an id.
  std::string_view Value(CellId id) const { return values_[id]; }

  size_t Size() const { return values_.size(); }

  /// Approximate footprint in bytes (strings + hash map).
  size_t ApproxBytes() const;

 private:
  // deque keeps string addresses stable so the map's string_view keys can
  // alias the stored strings.
  std::deque<std::string> values_;
  std::unordered_map<std::string_view, CellId> ids_;
};

}  // namespace blend
