#pragma once

#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "storage/data_lake.h"

namespace blend::baselines {

/// Reimplementation of the QCR sketch index (Santos et al., ICDE'22): for
/// every (categorical column, numeric column) pair of every lake table, hash
/// each row's (key value, quadrant bit) and keep the h smallest hashes. At
/// query time the same sketch is built from (join key, target quadrant) and
/// overlap between bottom-h sketches estimates the concordance fraction,
/// hence QCR, hence Pearson correlation.
///
/// Faithful limitations the paper calls out (§VIII-G): join keys must be
/// categorical (numeric key columns are not indexed), the sketch size h is
/// fixed at indexing time, and storage is quadratic in the column pairs.
class QcrSketchIndex {
 public:
  QcrSketchIndex(const DataLake* lake, int h);

  /// Top-k tables by estimated |correlation| of their best column pair.
  core::TableList TopK(const std::vector<std::string>& keys,
                       const std::vector<double>& targets, int k) const;

  size_t IndexBytes() const;
  int h() const { return h_; }

 private:
  struct PairSketch {
    TableId table;
    int32_t key_col;
    int32_t num_col;
    std::vector<uint64_t> hashes;  // sorted, ascending, size <= h
  };

  /// Bottom-h sketch of (key, quadrant) pairs.
  std::vector<uint64_t> BuildSketch(const std::vector<std::string>& keys,
                                    const std::vector<uint8_t>& quadrants) const;

  int h_;
  std::vector<PairSketch> sketches_;
  /// hash -> sketch ids containing it (inverted, for sub-linear retrieval).
  std::unordered_map<uint64_t, std::vector<uint32_t>> inverted_;
};

}  // namespace blend::baselines
