#include "baselines/mate.h"

#include <unordered_set>

#include "common/str_util.h"
#include "common/xash.h"

namespace blend::baselines {

Mate::Mate(const DataLake* lake) : lake_(lake) {
  super_keys_.resize(lake->NumTables());
  for (TableId t = 0; t < static_cast<TableId>(lake->NumTables()); ++t) {
    const Table& table = lake->table(t);
    auto& keys = super_keys_[static_cast<size_t>(t)];
    keys.resize(table.NumRows());
    std::vector<std::string> normalized(table.NumColumns());
    std::vector<std::string_view> views;
    for (size_t r = 0; r < table.NumRows(); ++r) {
      views.clear();
      for (size_t c = 0; c < table.NumColumns(); ++c) {
        normalized[c] = NormalizeCell(table.At(r, c));
        if (normalized[c].empty()) continue;
        views.push_back(normalized[c]);
        postings_[normalized[c]].push_back(
            (static_cast<uint64_t>(static_cast<uint32_t>(t)) << 32) |
            static_cast<uint32_t>(r));
      }
      keys[r] = Xash::SuperKey(views);
    }
  }
}

namespace {

bool AlignTuple(const std::vector<std::string>& row_cells,
                const std::vector<std::string>& tuple, size_t vi,
                std::vector<bool>* used) {
  if (vi == tuple.size()) return true;
  for (size_t c = 0; c < row_cells.size(); ++c) {
    if ((*used)[c] || row_cells[c] != tuple[vi]) continue;
    (*used)[c] = true;
    if (AlignTuple(row_cells, tuple, vi + 1, used)) return true;
    (*used)[c] = false;
  }
  return false;
}

}  // namespace

core::TableList Mate::TopK(const std::vector<std::vector<std::string>>& tuples, int k,
                           Stats* stats) const {
  Stats local;
  if (tuples.empty() || tuples[0].empty()) {
    if (stats != nullptr) *stats = local;
    return {};
  }

  // Normalize tuples; MATE probes the index with ONE key column: pick the one
  // with the smallest total posting volume (its frequency-aware choice).
  std::vector<std::vector<std::string>> norm;
  for (const auto& t : tuples) {
    std::vector<std::string> n;
    bool ok = true;
    for (const auto& v : t) {
      std::string nv = NormalizeCell(v);
      if (nv.empty()) {
        ok = false;
        break;
      }
      n.push_back(std::move(nv));
    }
    if (ok) norm.push_back(std::move(n));
  }
  if (norm.empty()) {
    if (stats != nullptr) *stats = local;
    return {};
  }
  const size_t cols = norm[0].size();
  size_t probe_col = 0;
  size_t best_volume = SIZE_MAX;
  for (size_t c = 0; c < cols; ++c) {
    size_t vol = 0;
    std::unordered_set<std::string> distinct;
    for (const auto& t : norm) {
      if (!distinct.insert(t[c]).second) continue;
      auto it = postings_.find(t[c]);
      if (it != postings_.end()) vol += it->second.size();
    }
    if (vol < best_volume) {
      best_volume = vol;
      probe_col = c;
    }
  }

  // Candidate rows: every row containing any probe-column value.
  std::unordered_set<RowKey> candidates;
  {
    std::unordered_set<std::string> distinct;
    for (const auto& t : norm) {
      if (!distinct.insert(t[probe_col]).second) continue;
      auto it = postings_.find(t[probe_col]);
      if (it == postings_.end()) continue;
      candidates.insert(it->second.begin(), it->second.end());
    }
  }
  local.candidate_rows = candidates.size();

  // Query tuple super keys.
  std::vector<uint64_t> tuple_hashes;
  tuple_hashes.reserve(norm.size());
  for (const auto& t : norm) {
    std::vector<std::string_view> views(t.begin(), t.end());
    tuple_hashes.push_back(Xash::SuperKey(views));
  }

  std::unordered_map<TableId, double> scores;
  std::vector<std::string> row_cells;
  for (RowKey rk : candidates) {
    TableId t = static_cast<TableId>(rk >> 32);
    size_t r = static_cast<size_t>(rk & 0xFFFFFFFFu);
    uint64_t super = super_keys_[static_cast<size_t>(t)][r];

    std::vector<size_t> surviving;
    for (size_t i = 0; i < norm.size(); ++i) {
      if (Xash::MayContain(super, tuple_hashes[i])) surviving.push_back(i);
    }
    if (surviving.empty()) continue;
    ++local.bloom_pass_rows;

    // Application-level exact validation (the expensive loop).
    const Table& table = lake_->table(t);
    row_cells.clear();
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      row_cells.push_back(NormalizeCell(table.At(r, c)));
    }
    bool validated = false;
    for (size_t i : surviving) {
      std::vector<bool> used(row_cells.size(), false);
      if (AlignTuple(row_cells, norm[i], 0, &used)) {
        validated = true;
        break;
      }
    }
    if (validated) {
      ++local.true_positives;
      scores[t] += 1.0;
    } else {
      ++local.false_positives;
    }
  }

  core::TableList out;
  out.reserve(scores.size());
  for (const auto& [t, s] : scores) out.push_back({t, s});
  core::SortDesc(&out);
  core::TruncateK(&out, k);
  if (stats != nullptr) *stats = local;
  return out;
}

size_t Mate::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& [tok, rows] : postings_) {
    bytes += tok.size() + sizeof(std::vector<RowKey>) + rows.size() * sizeof(RowKey);
  }
  for (const auto& keys : super_keys_) {
    bytes += sizeof(std::vector<uint64_t>) + keys.size() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace blend::baselines
