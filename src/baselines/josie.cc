#include "baselines/josie.h"

#include <algorithm>
#include <unordered_set>

#include "common/str_util.h"

namespace blend::baselines {

Josie::Josie(const DataLake* lake) : lake_(lake) {
  for (TableId t = 0; t < static_cast<TableId>(lake->NumTables()); ++t) {
    const Table& table = lake->table(t);
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      ColumnKey key = (static_cast<uint64_t>(static_cast<uint32_t>(t)) << 32) |
                      static_cast<uint32_t>(c);
      std::vector<TokenId>& set = column_sets_[key];
      std::unordered_set<std::string> seen;
      for (const auto& cell : table.column(c).cells) {
        std::string n = NormalizeCell(cell);
        if (n.empty() || !seen.insert(n).second) continue;
        auto [it, inserted] =
            token_ids_.emplace(n, static_cast<TokenId>(token_ids_.size()));
        if (inserted) postings_.emplace_back();
        postings_[it->second].push_back(key);
        set.push_back(it->second);
      }
      std::sort(set.begin(), set.end());
    }
  }
}

core::TableList Josie::TopK(const std::vector<std::string>& query, int k) const {
  last_stats_ = QueryStats{};

  // Resolve query tokens and order by increasing posting-list length.
  std::vector<TokenId> toks;
  std::unordered_set<std::string> distinct;
  for (const auto& q : query) {
    std::string n = NormalizeCell(q);
    if (n.empty() || !distinct.insert(n).second) continue;
    auto it = token_ids_.find(n);
    if (it != token_ids_.end()) toks.push_back(it->second);
  }
  std::sort(toks.begin(), toks.end(), [&](TokenId a, TokenId b) {
    return postings_[a].size() < postings_[b].size();
  });

  const size_t q = toks.size();
  std::unordered_map<ColumnKey, uint32_t> partial;
  partial.reserve(1024);

  size_t processed = 0;
  bool stopped = false;
  for (; processed < q; ++processed) {
    // Early-termination test: the best total any *unseen* candidate can still
    // reach is the number of unprocessed tokens. If the k-th best partial
    // count already exceeds it, reading more posting lists cannot surface new
    // top-k candidates.
    const size_t remaining = q - processed;
    if (k > 0 && partial.size() >= static_cast<size_t>(k) && (processed % 4 == 0)) {
      std::vector<uint32_t> counts;
      counts.reserve(partial.size());
      for (const auto& [ck, c] : partial) counts.push_back(c);
      std::nth_element(counts.begin(), counts.begin() + (k - 1), counts.end(),
                       std::greater<uint32_t>());
      if (static_cast<size_t>(counts[static_cast<size_t>(k - 1)]) >= remaining) {
        stopped = true;
        break;
      }
    }
    for (ColumnKey ck : postings_[toks[processed]]) {
      ++partial[ck];
      ++last_stats_.postings_read;
    }
  }
  last_stats_.early_terminated = stopped;

  // Finish survivors by probing their token sets with the unread suffix.
  std::unordered_map<ColumnKey, uint32_t> exact;
  exact.reserve(partial.size());
  if (stopped) {
    for (const auto& [ck, c] : partial) {
      uint32_t total = c;
      const auto& set = column_sets_.at(ck);
      ++last_stats_.sets_probed;
      for (size_t i = processed; i < q; ++i) {
        if (std::binary_search(set.begin(), set.end(), toks[i])) ++total;
      }
      exact[ck] = total;
    }
  } else {
    exact = std::move(partial);
  }

  // Best column per table.
  std::unordered_map<TableId, uint32_t> best;
  for (const auto& [ck, c] : exact) {
    TableId t = static_cast<TableId>(ck >> 32);
    auto& b = best[t];
    if (c > b) b = c;
  }
  core::TableList out;
  out.reserve(best.size());
  for (const auto& [t, s] : best) out.push_back({t, static_cast<double>(s)});
  core::SortDesc(&out);
  core::TruncateK(&out, k);
  return out;
}

size_t Josie::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& [tok, id] : token_ids_) bytes += tok.size() + sizeof(TokenId);
  for (const auto& p : postings_) {
    bytes += sizeof(std::vector<ColumnKey>) + p.size() * sizeof(ColumnKey);
  }
  for (const auto& [ck, set] : column_sets_) {
    bytes += sizeof(ColumnKey) + sizeof(std::vector<TokenId>) +
             set.size() * sizeof(TokenId);
  }
  return bytes;
}

}  // namespace blend::baselines
