#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "storage/data_lake.h"

namespace blend::baselines {

/// Reimplementation of JOSIE (Zhu et al., SIGMOD'19): exact top-k overlap set
/// similarity search for single-column join discovery. Keeps JOSIE's two
/// index structures — global posting lists and per-column token sets — and
/// its core pruning idea: process query tokens in increasing frequency order
/// and stop reading posting lists once no unseen candidate can reach the
/// current top-k; surviving candidates are finished by probing their token
/// sets directly (the "read candidate set" path of the paper's cost model).
class Josie {
 public:
  explicit Josie(const DataLake* lake);

  /// Exact top-k tables by the largest distinct-overlap column.
  core::TableList TopK(const std::vector<std::string>& query, int k) const;

  /// Storage of posting lists + set file (for the Table VIII comparison).
  size_t IndexBytes() const;

  /// Diagnostics of the last query (posting entries read, sets probed).
  struct QueryStats {
    size_t postings_read = 0;
    size_t sets_probed = 0;
    bool early_terminated = false;
  };
  const QueryStats& last_stats() const { return last_stats_; }

 private:
  using ColumnKey = uint64_t;  // (table << 32) | column
  using TokenId = uint32_t;

  const DataLake* lake_;
  std::unordered_map<std::string, TokenId> token_ids_;
  std::vector<std::vector<ColumnKey>> postings_;      // by token id
  std::unordered_map<ColumnKey, std::vector<TokenId>> column_sets_;  // sorted
  mutable QueryStats last_stats_;
};

}  // namespace blend::baselines
