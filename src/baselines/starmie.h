#pragma once

#include <memory>

#include "baselines/embedding.h"

namespace blend::baselines {

/// Simulation of Starmie (Fan et al., VLDB'23): semantics-aware table union
/// search with contextualized column embeddings and an ANN index. The
/// contrastive encoder is replaced by the domain-tag oracle embedding and the
/// HNSW index by the IVF index (DESIGN.md §2); the retrieval pipeline —
/// embed query columns, ANN-retrieve candidate columns, aggregate best
/// column matches per candidate table — follows the original.
class Starmie {
 public:
  explicit Starmie(const DataLake* lake, double semantic_weight = 0.8);

  /// Top-k unionable tables for the query table (itself excluded when it is a
  /// lake member, pass its id in `exclude`).
  core::TableList TopK(const Table& query, int k, TableId exclude = -1,
                       size_t per_column_candidates = 200) const;

  size_t IndexBytes() const { return index_.IndexBytes(); }

 private:
  double semantic_weight_;
  ColumnEmbeddingIndex index_;
};

}  // namespace blend::baselines
