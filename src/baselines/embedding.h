#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/result.h"
#include "storage/data_lake.h"

namespace blend::baselines {

/// Dimensionality of the simulated column embeddings.
constexpr int kEmbedDim = 64;
using Embedding = std::array<float, kEmbedDim>;

/// Simulated contrastive column encoder (substitute for Starmie's trained
/// model and DeepJoin's PLM; see DESIGN.md §2). A column embeds as the unit
/// vector of
///     semantic_weight * direction(domain_tag) + (1 - w) * token_features
/// where `direction(tag)` is a deterministic unit vector per latent domain
/// (the role the learned semantics play) and `token_features` is a hashed
/// bag-of-tokens vector (the syntactic signal). Columns without a domain tag
/// embed from tokens alone.
Embedding EmbedColumn(const Column& column, double semantic_weight = 0.8);

/// Cosine similarity of two embeddings.
double Cosine(const Embedding& a, const Embedding& b);

/// IVF-style approximate nearest neighbour index over all lake columns; the
/// stand-in for the HNSW index of Starmie/DeepJoin. Columns are clustered by
/// a deterministic k-means (few Lloyd iterations); a query probes the nearest
/// `nprobe` clusters only.
class ColumnEmbeddingIndex {
 public:
  struct Entry {
    TableId table;
    int32_t column;
    Embedding embedding;
  };

  ColumnEmbeddingIndex(const DataLake* lake, double semantic_weight = 0.8,
                       size_t num_clusters = 0 /* 0 = sqrt(columns) */);

  struct Neighbor {
    const Entry* entry;
    double score;
  };

  /// Approximate top-k columns by cosine similarity.
  std::vector<Neighbor> TopKColumns(const Embedding& query, size_t k,
                                    size_t nprobe = 4) const;

  const std::vector<Entry>& entries() const { return entries_; }
  size_t IndexBytes() const;

 private:
  std::vector<Entry> entries_;
  std::vector<Embedding> centroids_;
  std::vector<std::vector<uint32_t>> clusters_;  // entry ids per centroid
};

}  // namespace blend::baselines
