#include "baselines/qcr_sketch.h"

#include <algorithm>

#include "common/hashing.h"
#include "common/str_util.h"

namespace blend::baselines {

namespace {

uint64_t KeyQuadrantHash(const std::string& key, uint8_t quadrant) {
  return SaltedHash(key, 0x51C7ULL + quadrant);
}

}  // namespace

std::vector<uint64_t> QcrSketchIndex::BuildSketch(
    const std::vector<std::string>& keys, const std::vector<uint8_t>& quadrants) const {
  std::vector<uint64_t> hashes;
  hashes.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    hashes.push_back(KeyQuadrantHash(keys[i], quadrants[i]));
  }
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  if (hashes.size() > static_cast<size_t>(h_)) hashes.resize(static_cast<size_t>(h_));
  return hashes;
}

QcrSketchIndex::QcrSketchIndex(const DataLake* lake, int h) : h_(h) {
  for (TableId t = 0; t < static_cast<TableId>(lake->NumTables()); ++t) {
    const Table& table = lake->table(t);
    // Identify categorical and numeric columns.
    std::vector<size_t> cat_cols, num_cols;
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (table.column(c).IsNumeric()) {
        num_cols.push_back(c);
      } else {
        cat_cols.push_back(c);
      }
    }
    // Per numeric column: mean, then per-row quadrant bit.
    std::unordered_map<size_t, std::vector<int8_t>> quad;
    for (size_t nc : num_cols) {
      auto mean = table.column(nc).NumericMean();
      if (!mean.has_value()) continue;
      auto& qs = quad[nc];
      qs.resize(table.NumRows(), -1);
      for (size_t r = 0; r < table.NumRows(); ++r) {
        auto v = ParseNumeric(table.At(r, nc));
        if (v.has_value()) qs[r] = (*v >= *mean) ? 1 : 0;
      }
    }
    // Quadratic enumeration of (categorical, numeric) pairs — the storage
    // characteristic BLEND's single Quadrant column avoids.
    for (size_t kc : cat_cols) {
      for (size_t nc : num_cols) {
        auto it = quad.find(nc);
        if (it == quad.end()) continue;
        std::vector<std::string> keys;
        std::vector<uint8_t> qs;
        for (size_t r = 0; r < table.NumRows(); ++r) {
          if (it->second[r] < 0) continue;
          std::string key = NormalizeCell(table.At(r, kc));
          if (key.empty()) continue;
          keys.push_back(std::move(key));
          qs.push_back(static_cast<uint8_t>(it->second[r]));
        }
        if (keys.size() < 3) continue;
        PairSketch ps;
        ps.table = t;
        ps.key_col = static_cast<int32_t>(kc);
        ps.num_col = static_cast<int32_t>(nc);
        ps.hashes = BuildSketch(keys, qs);
        uint32_t id = static_cast<uint32_t>(sketches_.size());
        for (uint64_t hsh : ps.hashes) inverted_[hsh].push_back(id);
        sketches_.push_back(std::move(ps));
      }
    }
  }
}

core::TableList QcrSketchIndex::TopK(const std::vector<std::string>& keys,
                                     const std::vector<double>& targets,
                                     int k) const {
  // Build the query sketches: one assuming positive correlation (quadrant =
  // target side), one assuming negative (flipped), per the original paper's
  // dual-run scheme.
  double mean = 0;
  size_t n = std::min(keys.size(), targets.size());
  if (n == 0) return {};
  for (size_t i = 0; i < n; ++i) mean += targets[i];
  mean /= static_cast<double>(n);

  std::vector<std::string> norm;
  std::vector<uint8_t> pos_q, neg_q;
  for (size_t i = 0; i < n; ++i) {
    std::string key = NormalizeCell(keys[i]);
    if (key.empty()) continue;
    uint8_t q = targets[i] >= mean ? 1 : 0;
    norm.push_back(std::move(key));
    pos_q.push_back(q);
    neg_q.push_back(static_cast<uint8_t>(1 - q));
  }
  if (norm.empty()) return {};

  auto score_with = [&](const std::vector<uint8_t>& qs,
                        std::unordered_map<uint32_t, uint32_t>* overlap) {
    std::vector<uint64_t> sketch = BuildSketch(norm, qs);
    for (uint64_t hsh : sketch) {
      auto it = inverted_.find(hsh);
      if (it == inverted_.end()) continue;
      for (uint32_t id : it->second) ++(*overlap)[id];
    }
  };
  std::unordered_map<uint32_t, uint32_t> pos_overlap, neg_overlap;
  score_with(pos_q, &pos_overlap);
  score_with(neg_q, &neg_overlap);

  std::unordered_map<TableId, double> best;
  auto fold = [&](const std::unordered_map<uint32_t, uint32_t>& overlap) {
    for (const auto& [id, count] : overlap) {
      const PairSketch& ps = sketches_[id];
      double denom = static_cast<double>(
          std::min<size_t>(static_cast<size_t>(h_), ps.hashes.size()));
      if (denom <= 0) continue;
      double score = static_cast<double>(count) / denom;
      auto& b = best[ps.table];
      if (score > b) b = score;
    }
  };
  fold(pos_overlap);
  fold(neg_overlap);

  core::TableList out;
  out.reserve(best.size());
  for (const auto& [t, s] : best) out.push_back({t, s});
  core::SortDesc(&out);
  core::TruncateK(&out, k);
  return out;
}

size_t QcrSketchIndex::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& ps : sketches_) {
    bytes += sizeof(PairSketch) + ps.hashes.size() * sizeof(uint64_t);
  }
  for (const auto& [hsh, ids] : inverted_) {
    bytes += sizeof(uint64_t) + sizeof(std::vector<uint32_t>) +
             ids.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace blend::baselines
