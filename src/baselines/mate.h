#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "storage/data_lake.h"

namespace blend::baselines {

/// Reimplementation of MATE (Esmailoghli et al., VLDB'22): multi-column join
/// discovery with the XASH super-key filter. MATE probes its inverted index
/// with values of ONE query key column only, then filters the (much larger)
/// candidate row set with the super key and validates row-by-row at the
/// application level — the validation loop the paper identifies as the
/// baseline's bottleneck in Table III, and the source of its lower precision
/// in Table V (BLEND's SQL join already demands every column in the row).
class Mate {
 public:
  explicit Mate(const DataLake* lake);

  struct Stats {
    size_t candidate_rows = 0;
    size_t bloom_pass_rows = 0;
    size_t true_positives = 0;
    size_t false_positives = 0;
  };

  /// Top-k joinable tables on the composite key; `tuples` row-major.
  core::TableList TopK(const std::vector<std::vector<std::string>>& tuples, int k,
                       Stats* stats = nullptr) const;

  size_t IndexBytes() const;

 private:
  using RowKey = uint64_t;  // (table << 32) | row

  const DataLake* lake_;
  std::unordered_map<std::string, std::vector<RowKey>> postings_;
  std::vector<std::vector<uint64_t>> super_keys_;  // per table, per row
};

}  // namespace blend::baselines
