#include "baselines/deepjoin.h"

#include <unordered_map>

namespace blend::baselines {

DeepJoin::DeepJoin(const DataLake* lake, double semantic_weight)
    : semantic_weight_(semantic_weight), index_(lake, semantic_weight) {}

core::TableList DeepJoin::TopK(const std::vector<std::string>& query_column, int k,
                               size_t per_query_candidates) const {
  Column col;
  col.name = "q";
  col.cells = query_column;
  // The query column carries no oracle tag; the encoder sees tokens only —
  // like a PLM embedding raw query values.
  col.domain_tag = -1;
  return TopK(col, k, per_query_candidates);
}

core::TableList DeepJoin::TopK(const Column& query_column, int k,
                               size_t per_query_candidates) const {
  Embedding q = EmbedColumn(query_column, semantic_weight_);
  auto neighbors = index_.TopKColumns(q, per_query_candidates);
  std::unordered_map<TableId, double> best;
  for (const auto& n : neighbors) {
    auto& b = best[n.entry->table];
    if (n.score > b) b = n.score;
  }
  core::TableList out;
  out.reserve(best.size());
  for (const auto& [t, s] : best) out.push_back({t, s});
  core::SortDesc(&out);
  core::TruncateK(&out, k);
  return out;
}

}  // namespace blend::baselines
