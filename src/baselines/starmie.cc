#include "baselines/starmie.h"

#include <unordered_map>

namespace blend::baselines {

Starmie::Starmie(const DataLake* lake, double semantic_weight)
    : semantic_weight_(semantic_weight), index_(lake, semantic_weight) {}

core::TableList Starmie::TopK(const Table& query, int k, TableId exclude,
                              size_t per_column_candidates) const {
  // Unionability score of a candidate table: sum over query columns of the
  // best cosine match among the candidate's retrieved columns.
  std::unordered_map<TableId, std::unordered_map<int32_t, double>> best_per_col;
  for (size_t c = 0; c < query.NumColumns(); ++c) {
    Embedding q = EmbedColumn(query.column(c), semantic_weight_);
    auto neighbors = index_.TopKColumns(q, per_column_candidates);
    for (const auto& n : neighbors) {
      if (n.entry->table == exclude) continue;
      auto& slot = best_per_col[n.entry->table][static_cast<int32_t>(c)];
      if (n.score > slot) slot = n.score;
    }
  }
  core::TableList out;
  out.reserve(best_per_col.size());
  for (const auto& [t, cols] : best_per_col) {
    double score = 0;
    for (const auto& [c, s] : cols) score += s;
    out.push_back({t, score});
  }
  core::SortDesc(&out);
  core::TruncateK(&out, k);
  return out;
}

}  // namespace blend::baselines
