#include "baselines/embedding.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/hashing.h"
#include "common/str_util.h"

namespace blend::baselines {

namespace {

void Normalize(Embedding* e) {
  double norm = 0;
  for (float v : *e) norm += static_cast<double>(v) * v;
  norm = std::sqrt(norm);
  if (norm < 1e-12) {
    (*e)[0] = 1.0f;
    return;
  }
  for (float& v : *e) v = static_cast<float>(v / norm);
}

Embedding HashDirection(uint64_t seed) {
  Embedding e{};
  uint64_t s = seed;
  for (int i = 0; i < kEmbedDim; ++i) {
    s = Mix64(s + 0x9E37u);
    // Map to roughly N(0,1) via sum of two uniforms - 1.
    double u1 = static_cast<double>(s >> 11) / 9007199254740992.0;
    s = Mix64(s);
    double u2 = static_cast<double>(s >> 11) / 9007199254740992.0;
    e[i] = static_cast<float>(u1 + u2 - 1.0);
  }
  Normalize(&e);
  return e;
}

}  // namespace

Embedding EmbedColumn(const Column& column, double semantic_weight) {
  // Token feature vector: hashed bag of (up to) the first 64 distinct tokens.
  Embedding tokens{};
  std::unordered_set<std::string> seen;
  for (const auto& cell : column.cells) {
    std::string n = NormalizeCell(cell);
    if (n.empty() || !seen.insert(n).second) continue;
    Embedding d = HashDirection(Fnv1a64(n));
    for (int i = 0; i < kEmbedDim; ++i) tokens[i] += d[i];
    if (seen.size() >= 64) break;
  }
  Normalize(&tokens);

  Embedding out{};
  if (column.domain_tag >= 0) {
    Embedding dir = HashDirection(0xD00D0000ULL + static_cast<uint64_t>(column.domain_tag));
    for (int i = 0; i < kEmbedDim; ++i) {
      out[i] = static_cast<float>(semantic_weight * dir[i] +
                                  (1.0 - semantic_weight) * tokens[i]);
    }
  } else {
    out = tokens;
  }
  Normalize(&out);
  return out;
}

double Cosine(const Embedding& a, const Embedding& b) {
  double dot = 0;
  for (int i = 0; i < kEmbedDim; ++i) dot += static_cast<double>(a[i]) * b[i];
  return dot;  // inputs are unit vectors
}

ColumnEmbeddingIndex::ColumnEmbeddingIndex(const DataLake* lake,
                                           double semantic_weight,
                                           size_t num_clusters) {
  for (TableId t = 0; t < static_cast<TableId>(lake->NumTables()); ++t) {
    const Table& table = lake->table(t);
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      entries_.push_back({t, static_cast<int32_t>(c),
                          EmbedColumn(table.column(c), semantic_weight)});
    }
  }
  if (entries_.empty()) return;

  if (num_clusters == 0) {
    num_clusters = static_cast<size_t>(std::sqrt(static_cast<double>(entries_.size())));
  }
  num_clusters = std::max<size_t>(1, std::min(num_clusters, entries_.size()));

  // Deterministic k-means: seed centroids with evenly spaced entries.
  centroids_.resize(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    centroids_[c] = entries_[c * entries_.size() / num_clusters].embedding;
  }
  std::vector<uint32_t> assignment(entries_.size(), 0);
  for (int iter = 0; iter < 5; ++iter) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      double best = -2;
      uint32_t best_c = 0;
      for (size_t c = 0; c < num_clusters; ++c) {
        double s = Cosine(entries_[i].embedding, centroids_[c]);
        if (s > best) {
          best = s;
          best_c = static_cast<uint32_t>(c);
        }
      }
      assignment[i] = best_c;
    }
    std::vector<Embedding> sums(num_clusters, Embedding{});
    std::vector<size_t> counts(num_clusters, 0);
    for (size_t i = 0; i < entries_.size(); ++i) {
      for (int d = 0; d < kEmbedDim; ++d) {
        sums[assignment[i]][d] += entries_[i].embedding[d];
      }
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < num_clusters; ++c) {
      if (counts[c] == 0) continue;
      Normalize(&sums[c]);
      centroids_[c] = sums[c];
    }
  }
  clusters_.assign(num_clusters, {});
  for (size_t i = 0; i < entries_.size(); ++i) {
    clusters_[assignment[i]].push_back(static_cast<uint32_t>(i));
  }
}

std::vector<ColumnEmbeddingIndex::Neighbor> ColumnEmbeddingIndex::TopKColumns(
    const Embedding& query, size_t k, size_t nprobe) const {
  // Rank centroids, probe the nearest nprobe clusters.
  std::vector<std::pair<double, size_t>> ranked;
  ranked.reserve(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    ranked.emplace_back(Cosine(query, centroids_[c]), c);
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());

  std::vector<Neighbor> out;
  for (size_t p = 0; p < ranked.size() && p < nprobe; ++p) {
    for (uint32_t id : clusters_[ranked[p].second]) {
      out.push_back({&entries_[id], Cosine(query, entries_[id].embedding)});
    }
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.entry->table != b.entry->table) return a.entry->table < b.entry->table;
    return a.entry->column < b.entry->column;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

size_t ColumnEmbeddingIndex::IndexBytes() const {
  size_t bytes = entries_.size() * sizeof(Entry) + centroids_.size() * sizeof(Embedding);
  for (const auto& c : clusters_) bytes += c.size() * sizeof(uint32_t);
  return bytes;
}

}  // namespace blend::baselines
