#pragma once

#include "baselines/embedding.h"

namespace blend::baselines {

/// Simulation of DeepJoin (Dong et al., VLDB'23): joinable-table discovery
/// via column embeddings and ANN search. The PLM encoder is replaced by the
/// domain-tag oracle embedding; the per-query work is a single embedding plus
/// an ANN probe, which is what gives DeepJoin its runtime edge in Fig. 6.
class DeepJoin {
 public:
  explicit DeepJoin(const DataLake* lake, double semantic_weight = 0.8);

  /// Top-k tables with a column semantically joinable with the query column.
  /// Raw value lists embed from tokens only (like a PLM embedding raw text).
  core::TableList TopK(const std::vector<std::string>& query_column, int k,
                       size_t per_query_candidates = 200) const;

  /// Overload for query columns taken from a (tagged) table, giving the
  /// encoder the semantic signal a fine-tuned PLM would extract.
  core::TableList TopK(const Column& query_column, int k,
                       size_t per_query_candidates = 200) const;

  size_t IndexBytes() const { return index_.IndexBytes(); }

 private:
  double semantic_weight_;
  ColumnEmbeddingIndex index_;
};

}  // namespace blend::baselines
