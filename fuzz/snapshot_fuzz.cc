// Snapshot loader harness. The snapshot header/section machinery is the
// biggest untrusted-input surface in BLEND: a serving process maps whatever
// artifact it is pointed at. Contract under test (snapshot.h): every
// malformed input returns a descriptive Status — no input bytes may cause
// undefined behavior — and any input the loader ACCEPTS must yield a bundle
// whose posting lists are fully decodable and well-formed.
//
// The custom mutator keeps inputs structure-aware: after generic byte
// mutation it usually re-forges the header / section-table / per-section
// checksums so mutations penetrate past the checksum gate into the section
// and codec validators (occasionally it leaves them stale to keep the gate
// itself covered).
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "fuzz_util.h"
#include "index/snapshot.h"

extern "C" size_t LLVMFuzzerMutate(uint8_t* data, size_t size,
                                   size_t max_size);

namespace {

constexpr size_t kHeaderBytes = 72;
constexpr size_t kSectionEntryBytes = 32;
constexpr size_t kMaxInput = 1 << 20;

uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void Store64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

void WalkBundle(const blend::IndexBundle& bundle) {
  const size_t num_cells = bundle.dictionary().Size();
  const size_t probe = std::min<size_t>(num_cells, 64);
  for (size_t i = 0; i < probe; ++i) {
    const auto id = static_cast<blend::CellId>(i);
    const blend::PostingListRef list =
        bundle.layout() == blend::StoreLayout::kRow
            ? bundle.row_store().PostingList(id)
            : bundle.column_store().PostingList(id);
    const std::vector<blend::PostingValue> values = list.ToVector();
    FUZZ_CHECK(values.size() == list.size(), "posting list size mismatch");
    for (size_t k = 0; k < values.size(); ++k) {
      FUZZ_CHECK(values[k] < bundle.NumRecords(),
                 "posting position out of range");
      FUZZ_CHECK(k == 0 || values[k - 1] < values[k],
                 "posting list not strictly ascending");
    }
    // The cursor must agree with the bulk decode, batch by batch.
    blend::PostingCursor cur(list);
    size_t at = 0;
    for (auto batch = cur.NextBatch(); !batch.empty();
         batch = cur.NextBatch()) {
      for (blend::PostingValue v : batch) {
        FUZZ_CHECK(at < values.size(), "cursor yields extra values");
        FUZZ_CHECK(values[at] == v, "cursor disagrees with ToVector");
        ++at;
      }
    }
    FUZZ_CHECK(at == values.size(), "cursor yields too few values");
  }
  (void)bundle.OriginalRow(0, 0);
  (void)bundle.ApproxBytes();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  auto loaded = blend::internal::LoadSnapshotFromBuffer(data, size);
  if (loaded.ok()) WalkBundle(loaded.value());
  return 0;
}

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned seed) {
  size_t n = LLVMFuzzerMutate(data, size, max_size);
  if (n < kHeaderBytes) return n;
  // Keep 1 in 8 mutants with stale checksums so the gate stays exercised.
  if ((seed & 7u) == 0) return n;

  const uint64_t sections = Load64(data + 48);
  const uint64_t table_bytes = sections * kSectionEntryBytes;
  if (sections <= 64 && kHeaderBytes + table_bytes <= n) {
    for (uint64_t s = 0; s < sections; ++s) {
      uint8_t* e = data + kHeaderBytes + s * kSectionEntryBytes;
      const uint64_t off = Load64(e + 8);
      const uint64_t sz = Load64(e + 16);
      if (off <= n && sz <= n - off) {
        Store64(e + 24, blend::internal::SnapshotChecksum(data + off, sz));
      }
    }
    Store64(data + 56, blend::internal::SnapshotChecksum(data + kHeaderBytes,
                                                         table_bytes));
  }
  Store64(data + 64, blend::internal::SnapshotChecksum(data, 64));
  return n;
}
