// SQL parser harness. The parser consumes arbitrary query text (the serving
// layer accepts it over the wire); it must reject malformed input with a
// Status, never crash or read out of bounds. Accepted statements must
// survive a basic structural walk.
#include <cstdint>
#include <string>

#include "fuzz_util.h"
#include "sql/parser.h"

namespace {

constexpr size_t kMaxInput = 1 << 16;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto parsed = blend::sql::Parse(text);
  if (parsed.ok()) {
    FUZZ_CHECK(parsed.value() != nullptr, "ok parse returned null statement");
  }
  // The top-level grammar (EXPLAIN [ANALYZE] prefix) over the same input: an
  // accepted statement always carries a SELECT body.
  auto stmt = blend::sql::ParseStatement(text);
  if (stmt.ok()) {
    FUZZ_CHECK(stmt.value().select != nullptr,
               "ok ParseStatement returned null select");
  }
  return 0;
}
