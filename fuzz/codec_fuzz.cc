// Posting-codec harness. Contract under test (codec.h): after
// ValidatePostingPartition accepts a byte range, the check-free decode,
// lookup and cursor paths may not touch a byte outside it or produce
// malformed lists. So: feed arbitrary partitions through validation, and for
// every ACCEPTED partition check full agreement between all decode paths —
// any divergence, out-of-range value or sanitizer finding inside the
// "validated" paths is a bug in either the validator or the decoder.
//
// Input framing (the fuzzer mutates this as opaque bytes):
//   byte 0        num_lists - 1 (mod 64)
//   byte 1        limit selector: limit = (b1 + 1) << 16
//   2 * num_lists bytes of little-endian u16 list counts (mod 4097)
//   rest          the encoded partition, exactly [data, data + size)
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <vector>

#include "fuzz_util.h"
#include "index/codec.h"

namespace {

constexpr size_t kMaxInput = 1 << 20;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2 || size > kMaxInput) return 0;
  const size_t num_lists = static_cast<size_t>(data[0] % 64) + 1;
  const uint64_t limit = (static_cast<uint64_t>(data[1]) + 1) << 16;
  const size_t header = 2 + 2 * num_lists;
  if (size < header) return 0;

  std::vector<uint64_t> offsets(num_lists + 1, 0);
  for (size_t i = 0; i < num_lists; ++i) {
    uint16_t c;
    std::memcpy(&c, data + 2 + 2 * i, sizeof(c));
    offsets[i + 1] = offsets[i] + (c % 4097);
  }
  const uint8_t* part = data + header;
  const size_t part_size = size - header;

  if (!blend::ValidatePostingPartition(part, part_size, offsets, limit).ok()) {
    return 0;
  }

  // Accepted: bulk decode must stay in range and strictly ascending per list.
  const size_t total = offsets[num_lists];
  std::vector<blend::PostingValue> out(total);
  blend::DecodePostingPartition(part, offsets, out.data());
  for (size_t i = 0; i < num_lists; ++i) {
    for (size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      FUZZ_CHECK(out[k] < limit, "decoded value >= limit");
      FUZZ_CHECK(k == offsets[i] || out[k - 1] < out[k],
                 "decoded list not strictly ascending");
    }
  }

  // Per-list lookup and cursor iteration must agree with the bulk decode.
  blend::PostingListRef prev_list;
  std::vector<blend::PostingValue> prev_values;
  for (size_t i = 0; i < num_lists; ++i) {
    const blend::PostingListRef list =
        blend::FindPostingList(part, offsets, i);
    const size_t count = offsets[i + 1] - offsets[i];
    FUZZ_CHECK(list.size() == count, "FindPostingList count mismatch");
    const std::vector<blend::PostingValue> values = list.ToVector();
    FUZZ_CHECK(std::equal(values.begin(), values.end(),
                          out.begin() + static_cast<ptrdiff_t>(offsets[i])),
               "ToVector disagrees with bulk decode");

    blend::PostingCursor cur(list);
    size_t at = 0;
    for (auto batch = cur.NextBatch(); !batch.empty();
         batch = cur.NextBatch()) {
      for (blend::PostingValue v : batch) {
        FUZZ_CHECK(at < count, "cursor yields extra values");
        FUZZ_CHECK(values[at] == v, "cursor disagrees with ToVector");
        ++at;
      }
    }
    FUZZ_CHECK(at == count, "cursor yields too few values");

    if (count > 0) {
      // Seek into the middle and make sure iteration resumes on a block
      // boundary at or before the target ordinal / value.
      blend::PostingCursor seek(list);
      seek.SeekToOrdinal(count / 2);
      auto batch = seek.NextBatch();
      FUZZ_CHECK(!batch.empty(), "SeekToOrdinal lost the batch");
      FUZZ_CHECK(seek.batch_ordinal() <= count / 2 &&
                     count / 2 < seek.batch_ordinal() + batch.size(),
                 "SeekToOrdinal landed on the wrong block");

      blend::PostingCursor seek2(list);
      seek2.SeekAtLeast(values[count / 2]);
      auto batch2 = seek2.NextBatch();
      FUZZ_CHECK(!batch2.empty() && batch2.back() >= values[count / 2],
                 "SeekAtLeast overshot the target");
    }

    // Cursor x cursor galloping intersection must agree with the intersection
    // of the decoded sets — adjacent fuzzer lists make adversarial pairings
    // (wildly different lengths, interleavings, and skip-table shapes).
    if (i > 0) {
      const std::vector<blend::PostingValue> gallop =
          blend::GallopIntersect(prev_list, list);
      std::vector<blend::PostingValue> expect;
      std::set_intersection(prev_values.begin(), prev_values.end(),
                            values.begin(), values.end(),
                            std::back_inserter(expect));
      FUZZ_CHECK(gallop == expect,
                 "GallopIntersect disagrees with decoded-set intersection");
    }
    prev_list = list;
    prev_values = values;
  }

  // The canonical re-encoding of the decoded lists must itself validate and
  // decode back to the same lists (the encoder is a pure function of them).
  std::vector<uint8_t> re;
  blend::EncodePostingPartition(offsets, out, &re);
  FUZZ_CHECK(
      blend::ValidatePostingPartition(re.data(), re.size(), offsets, limit)
          .ok(),
      "re-encoded partition fails validation");
  std::vector<blend::PostingValue> out2(total);
  blend::DecodePostingPartition(re.data(), offsets, out2.data());
  FUZZ_CHECK(out == out2, "re-encode/decode round trip diverged");
  return 0;
}
