// Standalone fuzzing driver: a drop-in replacement for libFuzzer's runtime
// used when the toolchain cannot link -fsanitize=fuzzer (e.g. plain GCC).
//
// It speaks the same harness protocol — `LLVMFuzzerTestOneInput` plus the
// optional `LLVMFuzzerCustomMutator` — so every harness in this directory
// builds unchanged either way. Two modes:
//
//   blend_*_fuzz <file-or-dir>...            replay corpus inputs once each
//   blend_*_fuzz -runs=N [-seed=S] <dir>...  replay, then N mutated runs
//                                            seeded from the corpus
//
// Mutation is deliberately simple (the real fuzzing muscle is libFuzzer in
// CI); this driver exists so the harness properties themselves — the
// validate/decode agreement checks, the checksum forging — stay exercised on
// any toolchain and so that checked-in regression inputs always replay.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned seed)
    __attribute__((weak));

namespace {

std::mt19937_64 g_rng(0x42'1e'5d'00);

size_t RandBelow(size_t n) { return n == 0 ? 0 : g_rng() % n; }

// The input currently inside LLVMFuzzerTestOneInput, dumped by the abort
// handler so a FUZZ_CHECK / sanitizer failure leaves a reproducer behind
// (libFuzzer writes crash-* artifacts; this is the standalone equivalent).
const uint8_t* g_current_data = nullptr;
size_t g_current_size = 0;

void DumpCurrentInput(int sig) {
  if (g_current_data != nullptr) {
    std::FILE* f = std::fopen("crash-standalone.bin", "wb");
    if (f != nullptr) {
      std::fwrite(g_current_data, 1, g_current_size, f);
      std::fclose(f);
    }
    std::fprintf(stderr,
                 "standalone-fuzz: crashing input (%zu bytes) saved to "
                 "crash-standalone.bin\n",
                 g_current_size);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

int RunOne(const uint8_t* data, size_t size) {
  g_current_data = data;
  g_current_size = size;
  const int rc = LLVMFuzzerTestOneInput(data, size);
  g_current_data = nullptr;
  return rc;
}

}  // namespace

// libFuzzer's generic byte mutator, approximated: harness custom mutators
// call this for the "scramble some bytes" step before fixing up structure.
extern "C" size_t LLVMFuzzerMutate(uint8_t* data, size_t size,
                                   size_t max_size) {
  if (max_size == 0) return 0;
  if (size == 0) {
    data[0] = static_cast<uint8_t>(g_rng());
    return 1;
  }
  const int n_ops = 1 + static_cast<int>(RandBelow(4));
  for (int op = 0; op < n_ops; ++op) {
    switch (RandBelow(6)) {
      case 0: {  // flip one bit
        data[RandBelow(size)] ^= static_cast<uint8_t>(1u << RandBelow(8));
        break;
      }
      case 1: {  // overwrite one byte
        data[RandBelow(size)] = static_cast<uint8_t>(g_rng());
        break;
      }
      case 2: {  // overwrite a short run
        const size_t at = RandBelow(size);
        const size_t len = std::min(size - at, 1 + RandBelow(8));
        for (size_t i = 0; i < len; ++i) {
          data[at + i] = static_cast<uint8_t>(g_rng());
        }
        break;
      }
      case 3: {  // erase a range
        if (size <= 1) break;
        const size_t at = RandBelow(size - 1);
        const size_t len = 1 + RandBelow(std::min<size_t>(size - at - 1, 16) + 1);
        std::memmove(data + at, data + at + len, size - at - len);
        size -= len;
        break;
      }
      case 4: {  // insert random bytes
        if (size >= max_size) break;
        const size_t len = 1 + RandBelow(std::min<size_t>(max_size - size, 8));
        const size_t at = RandBelow(size + 1);
        std::memmove(data + at + len, data + at, size - at);
        for (size_t i = 0; i < len; ++i) {
          data[at + i] = static_cast<uint8_t>(g_rng());
        }
        size += len;
        break;
      }
      default: {  // duplicate a range elsewhere
        const size_t at = RandBelow(size);
        const size_t len = std::min(size - at, 1 + RandBelow(8));
        const size_t to = RandBelow(size - len + 1);
        std::memmove(data + to, data + at, len);
        break;
      }
    }
  }
  return size;
}

namespace {

using Input = std::vector<uint8_t>;

bool ReadWhole(const std::filesystem::path& p, Input* out) {
  std::ifstream f(p, std::ios::binary);
  if (!f) return false;
  out->assign(std::istreambuf_iterator<char>(f),
              std::istreambuf_iterator<char>());
  return true;
}

void Collect(const std::filesystem::path& p, std::vector<Input>* corpus) {
  std::error_code ec;
  if (std::filesystem::is_directory(p, ec)) {
    std::vector<std::filesystem::path> files;
    for (const auto& e : std::filesystem::directory_iterator(p)) {
      if (e.is_regular_file()) files.push_back(e.path());
    }
    // Directory order is filesystem-dependent; sort for reproducible replay.
    std::sort(files.begin(), files.end());
    for (const auto& f : files) {
      Input in;
      if (ReadWhole(f, &in)) corpus->push_back(std::move(in));
    }
  } else {
    Input in;
    if (ReadWhole(p, &in)) {
      corpus->push_back(std::move(in));
    } else {
      std::fprintf(stderr, "standalone-fuzz: cannot read %s\n",
                   p.string().c_str());
      std::exit(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 0;
  uint64_t seed = 0x42'1e'5d'00;
  size_t max_len = 1 << 20;
  std::vector<Input> corpus;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtol(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("-", 0) == 0) {
      // Ignore unknown libFuzzer-style flags so CI invocations stay portable.
    } else {
      Collect(arg, &corpus);
    }
  }
  g_rng.seed(seed);
  std::signal(SIGABRT, DumpCurrentInput);
  std::signal(SIGSEGV, DumpCurrentInput);

  for (const Input& in : corpus) {
    RunOne(in.data(), in.size());
  }
  std::fprintf(stderr, "standalone-fuzz: replayed %zu corpus inputs\n",
               corpus.size());

  if (runs > 0 && !corpus.empty()) {
    Input buf;
    for (long r = 0; r < runs; ++r) {
      const Input& base = corpus[RandBelow(corpus.size())];
      buf.assign(base.begin(), base.end());
      if (buf.size() < max_len) buf.resize(max_len);
      size_t n = std::min(base.size(), max_len);
      const unsigned mseed = static_cast<unsigned>(g_rng());
      n = (LLVMFuzzerCustomMutator != nullptr)
              ? LLVMFuzzerCustomMutator(buf.data(), n, max_len, mseed)
              : LLVMFuzzerMutate(buf.data(), n, max_len);
      RunOne(buf.data(), n);
    }
    std::fprintf(stderr, "standalone-fuzz: completed %ld mutated runs\n", runs);
  }
  return 0;
}
