#pragma once

// Shared helpers for the fuzz harnesses. FUZZ_CHECK is the harness analogue
// of an assertion: a violated property aborts so the driver (libFuzzer or the
// standalone runner) records the input as a crash.
#include <cstdio>
#include <cstdlib>

#define FUZZ_CHECK(cond, what)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FUZZ_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, what);                                     \
      std::abort();                                                     \
    }                                                                   \
  } while (0)
