// CSV reader harness. Lake ingestion parses untrusted files; the reader must
// reject malformed input with a Status, never crash. Accepted data must
// round-trip: writing it back out and re-parsing yields the same header and
// rows (WriteCsv quotes whatever the dialect requires).
#include <cstdint>
#include <string>

#include "common/csv.h"
#include "fuzz_util.h"

namespace {

constexpr size_t kMaxInput = 1 << 18;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto parsed = blend::ParseCsv(text);
  if (!parsed.ok()) return 0;

  const blend::CsvData& first = parsed.value();
  const std::string written = blend::WriteCsv(first);
  auto reparsed = blend::ParseCsv(written);
  FUZZ_CHECK(reparsed.ok(), "re-parse of written CSV failed");
  const blend::CsvData& second = reparsed.value();
  FUZZ_CHECK(first.header == second.header, "CSV header round trip diverged");
  FUZZ_CHECK(first.rows == second.rows, "CSV rows round trip diverged");
  return 0;
}
