// Structure-aware seed-corpus generator. Fuzzing from real artifacts reaches
// the deep validators orders of magnitude faster than from empty seeds, so
// the checked-in corpora start from genuine WriteSnapshot output (both
// layouts x both codecs x shuffled), genuine EncodePostingPartition output
// under the codec harness's framing, and representative SQL / CSV texts.
//
//   blend_gen_corpus <corpus-root>
//
// writes <root>/{snapshot,codec,sql,csv}/seed-*. Deterministic: same build,
// same bytes.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "index/builder.h"
#include "index/codec.h"
#include "index/snapshot.h"
#include "lakegen/join_lake.h"

namespace fs = std::filesystem;

namespace {

void WriteFile(const fs::path& p, const void* data, size_t size) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!f) {
    std::fprintf(stderr, "gen_corpus: cannot write %s\n", p.string().c_str());
    std::exit(1);
  }
}

void WriteFile(const fs::path& p, const std::vector<uint8_t>& bytes) {
  WriteFile(p, bytes.data(), bytes.size());
}

void WriteFile(const fs::path& p, const std::string& text) {
  WriteFile(p, text.data(), text.size());
}

std::vector<uint8_t> Slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

// --- snapshot seeds -------------------------------------------------------

void GenSnapshotSeeds(const fs::path& dir) {
  blend::lakegen::JoinLakeSpec spec;
  spec.num_tables = 8;
  spec.min_rows = 4;
  spec.max_rows = 24;
  spec.num_domains = 3;
  spec.domain_vocab = 60;
  const blend::DataLake lake = blend::lakegen::MakeJoinLake(spec);

  const fs::path tmp = dir / "tmp.snapshot";
  int n = 0;
  for (const blend::StoreLayout layout :
       {blend::StoreLayout::kRow, blend::StoreLayout::kColumn}) {
    for (const blend::PostingCodec codec :
         {blend::PostingCodec::kRaw, blend::PostingCodec::kCompressed}) {
      for (const bool shuffle : {false, true}) {
        blend::IndexBuildOptions opts;
        opts.layout = layout;
        opts.shuffle_rows = shuffle;
        opts.num_threads = 1;
        const blend::IndexBundle bundle = blend::IndexBuilder(opts).Build(lake);
        blend::SnapshotOptions sopts;
        sopts.codec = codec;
        const blend::Status s = blend::WriteSnapshot(bundle, tmp.string(), sopts);
        if (!s.ok()) {
          std::fprintf(stderr, "gen_corpus: WriteSnapshot: %s\n",
                       s.message().c_str());
          std::exit(1);
        }
        WriteFile(dir / ("seed-" + std::to_string(n++)), Slurp(tmp));
      }
    }
  }
  fs::remove(tmp);
}

// --- codec seeds ----------------------------------------------------------

// Mirrors the framing in codec_fuzz.cc: num_lists-1, limit selector, u16
// counts, then the encoded partition.
std::vector<uint8_t> FramePartition(
    const std::vector<std::vector<blend::PostingValue>>& lists) {
  std::vector<uint64_t> offsets{0};
  std::vector<blend::PostingValue> positions;
  for (const auto& l : lists) {
    positions.insert(positions.end(), l.begin(), l.end());
    offsets.push_back(positions.size());
  }
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(lists.size() - 1));
  out.push_back(15);  // limit = 16 << 16 = 1048576, above every value below
  for (const auto& l : lists) {
    const auto c = static_cast<uint16_t>(l.size());
    out.push_back(static_cast<uint8_t>(c & 0xFF));
    out.push_back(static_cast<uint8_t>(c >> 8));
  }
  blend::EncodePostingPartition(offsets, positions, &out);
  return out;
}

void GenCodecSeeds(const fs::path& dir) {
  using List = std::vector<blend::PostingValue>;
  std::mt19937 rng(1234);

  // Singletons: the long-tail case, one varint per list.
  std::vector<List> singles;
  for (uint32_t i = 0; i < 64; ++i) singles.push_back({i * 37 + 5});
  WriteFile(dir / "seed-singles", FramePartition(singles));

  // A dense run, a bitmap-shaped cluster and a sparse packed list.
  List run;
  for (uint32_t v = 1000; v < 1000 + 400; ++v) run.push_back(v);
  List cluster;
  for (uint32_t v = 0; v < 4096; ++v) {
    if (rng() % 3 != 0) cluster.push_back(v);
  }
  List sparse;
  for (uint32_t v = 0, step = 1; sparse.size() < 300; ++v) {
    step = 1 + rng() % 5000;
    v += step;
    sparse.push_back(v);
  }
  WriteFile(dir / "seed-mixed",
            FramePartition({run, {}, cluster, {}, sparse, {42}}));

  // A multi-block list exercising the skip table (>= 9 blocks).
  List longlist;
  for (uint32_t v = 0; longlist.size() < 1200; v += 1 + rng() % 40) {
    longlist.push_back(v);
  }
  WriteFile(dir / "seed-long", FramePartition({longlist}));

  // An empty partition: 64 empty lists encode to zero bytes.
  WriteFile(dir / "seed-empty",
            FramePartition(std::vector<List>(64, List{})));
}

// --- sql / csv seeds ------------------------------------------------------

void GenSqlSeeds(const fs::path& dir) {
  const char* queries[] = {
      "SELECT TableId, ColumnId, COUNT(DISTINCT CellValue) AS score "
      "FROM AllTables WHERE CellValue IN ('a','b','c') "
      "GROUP BY TableId, ColumnId ORDER BY score DESC LIMIT 10;",
      "SELECT TableId, RowId FROM AllTables WHERE CellValue IN ('x')",
      "SELECT a.TableId, a.RowId, a.SuperKey FROM "
      "(SELECT TableId, RowId FROM AllTables WHERE CellValue IN ('y')) AS a "
      "INNER JOIN (SELECT * FROM AllTables) AS b ON a.RowId = b.RowId",
      "SELECT RowId FROM AllTables WHERE Quadrant IS NOT NULL AND RowId < 256",
      "SELECT TableId FROM AllTables WHERE TableId NOT IN (1,2,3)",
      "SELECT TableId, COUNT(*), SUM(RowId), AVG(RowId * 1.5) "
      "FROM AllTables GROUP BY TableId",
      "EXPLAIN SELECT TableId, COUNT(DISTINCT CellValue) AS score "
      "FROM AllTables WHERE CellValue IN ('a','b') "
      "GROUP BY TableId ORDER BY score DESC LIMIT 5;",
      "EXPLAIN ANALYZE SELECT TableId, RowId FROM AllTables "
      "WHERE CellValue IN ('x') LIMIT 3;",
  };
  int n = 0;
  for (const char* q : queries) {
    WriteFile(dir / ("seed-" + std::to_string(n++)), std::string(q));
  }
}

void GenCsvSeeds(const fs::path& dir) {
  const char* docs[] = {
      "a,b,c\n1,2,3\n4,5,6\n",
      "name,dept\n\"Potter, Harry\",Finance\n\"says \"\"hi\"\"\",IT\n",
      "k,v\nmultiline,\"first\nsecond\"\n,\n",
      "only_header\n",
      "x\n1\n2\n3\n4\n5\n",
  };
  int n = 0;
  for (const char* d : docs) {
    WriteFile(dir / ("seed-" + std::to_string(n++)), std::string(d));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: blend_gen_corpus <corpus-root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  for (const char* sub : {"snapshot", "codec", "sql", "csv"}) {
    fs::create_directories(root / sub);
  }
  GenSnapshotSeeds(root / "snapshot");
  GenCodecSeeds(root / "codec");
  GenSqlSeeds(root / "sql");
  GenCsvSeeds(root / "csv");
  std::printf("corpus written under %s\n", root.string().c_str());
  return 0;
}
